#include "net/remote_target.h"

#include <chrono>
#include <thread>
#include <utility>

#include "proc/client.h"
#include "telemetry/telemetry.h"

namespace aid {

Result<std::unique_ptr<RemoteTarget>> RemoteTarget::Create(
    std::vector<Endpoint> endpoints, const SubjectSpec& spec,
    RemoteOptions options) {
  if (!RemoteFleetSupported()) {
    return Status::Unimplemented(
        "RemoteTarget: the remote fleet requires POSIX sockets, which this "
        "platform does not provide");
  }
  if (endpoints.empty()) {
    return Status::InvalidArgument(
        "RemoteTarget: at least one runner endpoint is required");
  }
  if (options.trial_deadline_ms < 0) {
    return Status::InvalidArgument(
        "RemoteTarget: trial_deadline_ms must be >= 0, got " +
        std::to_string(options.trial_deadline_ms));
  }
  if (options.max_reconnects < 0) {
    return Status::InvalidArgument(
        "RemoteTarget: max_reconnects must be >= 0, got " +
        std::to_string(options.max_reconnects));
  }
  if (options.connect_attempts < 1) {
    return Status::InvalidArgument(
        "RemoteTarget: connect_attempts must be >= 1, got " +
        std::to_string(options.connect_attempts));
  }
  SubjectSpec effective = spec;
  // Injection knobs live on the options (the session-facing surface) but
  // execute in the runner's session child, so they ride inside the spec.
  if (options.inject_crash_period != 0) {
    effective.crash_period = options.inject_crash_period;
  }
  if (options.inject_hang_period != 0) {
    effective.hang_period = options.inject_hang_period;
  }
  AID_ASSIGN_OR_RETURN(std::string bytes, EncodeSubjectSpec(effective));
  return std::unique_ptr<RemoteTarget>(new RemoteTarget(
      std::make_shared<const std::string>(std::move(bytes)),
      std::move(endpoints), std::move(options)));
}

RemoteTarget::~RemoteTarget() {
  if (channel_ != nullptr) {
    // Best-effort goodbye so the runner's session child exits promptly
    // instead of discovering the closed socket on its next read.
    (void)channel_->Write(ProcMsgType::kShutdown, {},
                          /*deadline_ms=*/1000);
  }
  Disconnect();
  if (latency_board_ != nullptr && placed_on_.has_value()) {
    // Hand the board placement back so a later pool over the same fleet
    // is not skewed by ghost registrations from this one.
    latency_board_->ReleaseReplica(*placed_on_);
  }
}

void RemoteTarget::RecordEndpointFailure(const Endpoint& endpoint) {
  if (latency_board_ == nullptr) return;
  // A failed connect/handshake attempt charges the endpoint the full
  // attempt budget as a latency sample. Without this, a runner that is
  // dead from the start never gets measured, and PlaceReplica's
  // explore-unmeasured-first rule would lead every reconnect of the whole
  // session straight into its connect timeout.
  latency_board_->RecordTrial(
      endpoint, static_cast<uint64_t>(options_.connect_timeout_ms) * 1000);
}

Status RemoteTarget::EnsureConnected() {
  if (channel_ != nullptr) return Status::OK();

  Status last = Status::Internal("RemoteTarget: no connect attempt ran");
  for (int attempt = 0; attempt < options_.connect_attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff before every retry; the first attempt is
      // immediate (the common reconnect case is a crashed session child
      // behind a perfectly healthy runner). Widened arithmetic: a large
      // base times 2^attempt must saturate at the cap, not overflow.
      const int shift = attempt - 1 < 20 ? attempt - 1 : 20;
      const int64_t unclamped = static_cast<int64_t>(options_.backoff_ms)
                                << shift;
      const int sleep_ms =
          unclamped > options_.backoff_max_ms || unclamped <= 0
              ? options_.backoff_max_ms
              : static_cast<int>(unclamped);
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
    }
    // connect_timeout_ms budgets the whole attempt: TCP connect AND the
    // handshake share one absolute deadline.
    const auto attempt_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.connect_timeout_ms);
    const Endpoint& endpoint = current_endpoint();
    Result<int> fd = ConnectTo(endpoint, options_.connect_timeout_ms);
    if (!fd.ok()) {
      last = Status(fd.status().code(),
                    "RemoteTarget: " + endpoint.ToString() +
                        " unreachable: " + fd.status().message());
      RecordEndpointFailure(endpoint);
      ++endpoint_index_;  // fail over to the next endpoint in preference
      continue;
    }
    auto channel = std::make_unique<SocketChannel>(*fd);
    SubjectHandshake handshake;
    const auto handshake_budget =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            attempt_deadline - std::chrono::steady_clock::now())
            .count();
    handshake.timeout_ms =
        handshake_budget > 0 ? static_cast<int>(handshake_budget) : 1;
    handshake.expected_catalog_size = options_.expected_catalog_size;
    handshake.previous_catalog_size = remote_catalog_size_;
    handshake.peer = "runner " + endpoint.ToString();
    Result<uint32_t> catalog =
        HandshakeSubject(*channel, *spec_bytes_, handshake);
    if (!catalog.ok()) {
      // A structural handshake failure -- version mismatch
      // (FailedPrecondition) or a host that cannot decode/build the
      // shipped spec (InvalidArgument) -- will not heal by retrying
      // elsewhere: the fleet is misdeployed. Fail loudly instead of
      // burning the backoff schedule. Everything else (Internal covers
      // both catalog mismatches AND transient local I/O, Aborted a peer
      // that died mid-handshake) stays retryable with failover, because a
      // flaky read must not abort a run that a healthy sibling endpoint
      // could have served.
      const StatusCode code = catalog.status().code();
      if (code == StatusCode::kFailedPrecondition ||
          code == StatusCode::kInvalidArgument) {
        return Status(code, "RemoteTarget: " + catalog.status().message());
      }
      last = Status(code, "RemoteTarget: " + catalog.status().message());
      RecordEndpointFailure(endpoint);
      ++endpoint_index_;
      continue;
    }
    remote_catalog_size_ = *catalog;
    channel_ = std::move(channel);
    if (latency_board_ != nullptr &&
        (!placed_on_.has_value() || !(*placed_on_ == endpoint))) {
      // Failover landed this replica somewhere the placement pick did not
      // anticipate; move the board registration so placement counts track
      // where replicas actually live.
      latency_board_->MoveReplica(
          placed_on_.has_value() ? &*placed_on_ : nullptr, endpoint);
      placed_on_ = endpoint;
    }
    return Status::OK();
  }
  return Status(last.code(),
                last.message() + " (after " +
                    std::to_string(options_.connect_attempts) +
                    " attempts across " +
                    std::to_string(endpoints_.size()) + " endpoint(s))");
}

void RemoteTarget::Disconnect() { channel_.reset(); }

Status RemoteTarget::Reconnect() {
  Disconnect();
  if (health_.respawns >= static_cast<uint64_t>(options_.max_reconnects)) {
    return Status::Aborted(
        "RemoteTarget: remote subject crashed/hung through " +
        std::to_string(health_.respawns) +
        " reconnects (max_reconnects); giving up on a crash loop");
  }
  ++health_.respawns;
  if (latency_board_ != nullptr) {
    // A reconnect stands up a brand-new runner-side replica, so place it
    // like one: lead with the board's lowest-predicted-latency endpoint
    // instead of blindly continuing the rotation. (This is where learned
    // placement acts inside a running session -- the pool's initial
    // clones are dealt before any measurement exists.) The placement is a
    // MOVE -- the dead connection's registration is released first, so
    // the board's counts track the live replica population. If the pick
    // is the endpoint that just died, EnsureConnected's failover walks on
    // from it after one connect timeout, exactly as it would have anyway.
    if (placed_on_.has_value()) latency_board_->ReleaseReplica(*placed_on_);
    endpoint_index_ = latency_board_->PlaceReplica(endpoints_);
    placed_on_ = endpoints_[endpoint_index_ % endpoints_.size()];
  }
  return EnsureConnected();
}

Result<PredicateLog> RemoteTarget::RunOneTrial(
    const std::vector<PredicateId>& intervened, uint64_t trial_index) {
  AID_RETURN_IF_ERROR(EnsureConnected());
  // Connection loss -> kCrashed, deadline -> kTimedOut, reconnect either
  // way (proc/client.h has the full lifecycle contract). On a timeout the
  // dropped connection is also what kills the hung remote subject: the
  // runner-side watchdog sees the hangup and reaps its session child.
  const Endpoint served_by = current_endpoint();
  const uint64_t micros_before = health_.trial_micros;
  Result<PredicateLog> log =
      RunTrialWithRecovery(*channel_, trial_index, intervened,
                           options_.trial_deadline_ms, &health_,
                           [this]() { return Reconnect(); },
                           options_.telemetry.get());
  const uint64_t trial_micros = health_.trial_micros - micros_before;
  if (latency_board_ != nullptr && log.ok() &&
      log->outcome == TrialOutcome::kCompleted) {
    // Feed the fleet's placement loop with this trial's wire timing,
    // charged against the endpoint that actually served it (captured
    // before any failover). Crashed/timed-out trials are excluded: their
    // sample is deadline waits plus reconnect backoff, and after a
    // failover it would poison the EWMA of the healthy endpoint the
    // replica landed on, not the one that failed.
    latency_board_->RecordTrial(served_by, trial_micros);
  }
  if (options_.telemetry != nullptr && trial_micros > 0) {
    // Per-endpoint latency distribution (the generic per-transport
    // histogram is recorded inside RunTrialWithRecovery).
    options_.telemetry
        ->LatencyHistogram("aid_endpoint_trial_latency_us",
                           {{"endpoint", served_by.ToString()}})
        ->Record(trial_micros);
  }
  return log;
}

Result<TargetRunResult> RemoteTarget::RunIntervened(
    const std::vector<PredicateId>& intervened, int trials) {
  if (trials < 1) trials = 1;
  TargetRunResult result;
  result.logs.reserve(static_cast<size_t>(trials));
  for (int i = 0; i < trials; ++i) {
    const uint64_t trial_index = trial_cursor_++;
    ++executions_;
    AID_ASSIGN_OR_RETURN(PredicateLog log,
                         RunOneTrial(intervened, trial_index));
    result.logs.push_back(std::move(log));
  }
  return result;
}

Result<std::unique_ptr<ReplicableTarget>> RemoteTarget::Clone() const {
  auto clone = std::unique_ptr<RemoteTarget>(
      new RemoteTarget(spec_bytes_, endpoints_, options_));
  clone->trial_cursor_ = trial_cursor_;
  clone->latency_board_ = latency_board_;
  return std::unique_ptr<ReplicableTarget>(std::move(clone));
}

Status RemoteTarget::Ping(int timeout_ms) {
  AID_RETURN_IF_ERROR(EnsureConnected());
  const Status status = PingPeer(*channel_, ++ping_token_, timeout_ms);
  if (!status.ok()) {
    // A failed probe may leave half a PONG at the stream head; keep the
    // invariant that a live channel_ is always frame-aligned by dropping
    // the connection (the next trial reconnects).
    Disconnect();
  }
  return status;
}

}  // namespace aid
