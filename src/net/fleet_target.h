// FleetTarget: one ReplicableTarget fronting a whole list of runners.
//
// A RemoteTarget binds (in preference order) to one runner; a FleetTarget
// holds the runner list and deals replicas out across it. Under
// exec::ParallelTarget the division of labor is exact: the pool clones the
// primary N times and never runs the primary itself, and each FleetTarget
// clone is a RemoteTarget whose endpoint preference is the fleet list
// rotated to lead with the endpoint a shared LatencyBoard picked -- the
// lowest predicted per-replica latency once trial timings exist, plain
// round-robin exploration before then (net/latency.h) -- with the
// remaining runners as its reconnect-failover order. Every replica feeds
// its wire-level trial timings back to the board, so a heterogeneous fleet
// (one runner 10x slower) converges on placing new replicas where rounds
// finish fastest instead of dealing blindly. Losing one runner still
// degrades (replicas fail over) instead of failing.
//
// Used serially (parallelism 1, no pool), the FleetTarget lazily binds
// itself to the board-picked endpoint and behaves as that RemoteTarget.
// Its trial cursor commits only on success: a failed trial call leaves the
// cursor -- and therefore the positions any retry or sibling replica will
// run -- exactly where serial dispatch's first error would have, instead
// of silently swallowing the failed call's partial consumption.
//
// The determinism contract is untouched: which runner executes a trial can
// never influence its bytes (positional trial indices), so worker count,
// fleet size, measured latencies, and placement all leave the
// DiscoveryReport bit-identical to the in-process run.

#ifndef AID_NET_FLEET_TARGET_H_
#define AID_NET_FLEET_TARGET_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/replicable.h"
#include "net/latency.h"
#include "net/remote_target.h"
#include "net/socket.h"
#include "proc/subject_spec.h"

namespace aid {

class FleetTarget : public ReplicableTarget {
 public:
  /// Validates and freezes `spec` (serialized once, shared by every
  /// replica the fleet deals out). No connection is opened until a replica
  /// first executes. Returns Unimplemented on platforms without sockets.
  static Result<std::unique_ptr<FleetTarget>> Create(
      std::vector<Endpoint> endpoints, const SubjectSpec& spec,
      RemoteOptions options = {});

  FleetTarget(const FleetTarget&) = delete;
  FleetTarget& operator=(const FleetTarget&) = delete;

  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override;

  /// A RemoteTarget on the endpoint the latency board picks (lowest
  /// predicted latency; round-robin while unmeasured), with the rest of
  /// the fleet as its failover order, positioned at this target's cursor.
  Result<std::unique_ptr<ReplicableTarget>> Clone() const override;

  void SeekTrial(uint64_t trial_index) override;
  uint64_t trial_position() const override { return trial_cursor_; }

  uint64_t executions() const override {
    return self_ != nullptr ? self_->executions() : 0;
  }
  TargetHealth health() const override {
    return self_ != nullptr ? self_->health() : TargetHealth{};
  }

  const std::vector<Endpoint>& endpoints() const { return endpoints_; }
  const RemoteOptions& options() const { return options_; }

  /// The shared placement board (one per fleet, fed by every replica).
  const LatencyBoard& latency_board() const { return *board_; }

 private:
  FleetTarget(std::shared_ptr<const std::string> spec_bytes,
              std::vector<Endpoint> endpoints, RemoteOptions options)
      : spec_bytes_(std::move(spec_bytes)),
        endpoints_(std::move(endpoints)),
        options_(std::move(options)),
        board_(std::make_shared<LatencyBoard>()) {}

  /// The fleet list rotated so `first` leads, preserving failover order.
  std::vector<Endpoint> RotatedEndpoints(uint64_t first) const;

  /// A RemoteTarget bound (in preference order) to the board's pick,
  /// wired to feed its trial timings back.
  std::unique_ptr<RemoteTarget> DealReplica() const;

  std::shared_ptr<const std::string> spec_bytes_;
  std::vector<Endpoint> endpoints_;
  RemoteOptions options_;

  /// Placement brain, shared with every clone's origin (and every dealt
  /// replica) so latency learned anywhere steers placement everywhere.
  std::shared_ptr<LatencyBoard> board_;

  /// The fleet's own replica, bound lazily on first serial use.
  std::unique_ptr<RemoteTarget> self_;
  uint64_t trial_cursor_ = 0;
};

}  // namespace aid

#endif  // AID_NET_FLEET_TARGET_H_
