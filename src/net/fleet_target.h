// FleetTarget: one ReplicableTarget fronting a whole list of runners.
//
// A RemoteTarget binds (in preference order) to one runner; a FleetTarget
// holds the runner list and deals replicas out across it. Under
// exec::ParallelTarget the division of labor is exact: the pool clones the
// primary N times and never runs the primary itself, and each FleetTarget
// clone is a RemoteTarget whose endpoint preference is the fleet list
// rotated one further -- replica k lands on runner (k mod M), with the
// remaining runners as its reconnect-failover order. A fleet of M runners
// behind a pool of N workers therefore hosts ceil(N/M) replicas each, and
// losing one runner degrades (replicas fail over) instead of failing.
//
// Used serially (parallelism 1, no pool), the FleetTarget lazily binds
// itself to the next endpoint and behaves as that RemoteTarget.
//
// The determinism contract is untouched: which runner executes a trial can
// never influence its bytes (positional trial indices), so worker count,
// fleet size, and placement all leave the DiscoveryReport bit-identical to
// the in-process run.

#ifndef AID_NET_FLEET_TARGET_H_
#define AID_NET_FLEET_TARGET_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/replicable.h"
#include "net/remote_target.h"
#include "net/socket.h"
#include "proc/subject_spec.h"

namespace aid {

class FleetTarget : public ReplicableTarget {
 public:
  /// Validates and freezes `spec` (serialized once, shared by every
  /// replica the fleet deals out). No connection is opened until a replica
  /// first executes. Returns Unimplemented on platforms without sockets.
  static Result<std::unique_ptr<FleetTarget>> Create(
      std::vector<Endpoint> endpoints, const SubjectSpec& spec,
      RemoteOptions options = {});

  FleetTarget(const FleetTarget&) = delete;
  FleetTarget& operator=(const FleetTarget&) = delete;

  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override;

  /// A RemoteTarget on the next runner (round-robin), with the rest of the
  /// fleet as its failover order, positioned at this target's cursor.
  Result<std::unique_ptr<ReplicableTarget>> Clone() const override;

  void SeekTrial(uint64_t trial_index) override;
  uint64_t trial_position() const override { return trial_cursor_; }

  int executions() const override {
    return self_ != nullptr ? self_->executions() : 0;
  }
  TargetHealth health() const override {
    return self_ != nullptr ? self_->health() : TargetHealth{};
  }

  const std::vector<Endpoint>& endpoints() const { return endpoints_; }
  const RemoteOptions& options() const { return options_; }

 private:
  FleetTarget(std::shared_ptr<const std::string> spec_bytes,
              std::vector<Endpoint> endpoints, RemoteOptions options)
      : spec_bytes_(std::move(spec_bytes)),
        endpoints_(std::move(endpoints)),
        options_(std::move(options)),
        next_endpoint_(std::make_shared<std::atomic<uint64_t>>(0)) {}

  /// The fleet list rotated so `first` leads, preserving failover order.
  std::vector<Endpoint> RotatedEndpoints(uint64_t first) const;

  std::shared_ptr<const std::string> spec_bytes_;
  std::vector<Endpoint> endpoints_;
  RemoteOptions options_;

  /// Round-robin dealer, shared with every clone's origin so replicas
  /// spread across the fleet no matter who cloned whom.
  std::shared_ptr<std::atomic<uint64_t>> next_endpoint_;

  /// The fleet's own replica, bound lazily on first serial use.
  std::unique_ptr<RemoteTarget> self_;
  uint64_t trial_cursor_ = 0;
};

}  // namespace aid

#endif  // AID_NET_FLEET_TARGET_H_
