// Runner: the daemon side of the remote fleet -- accepts engine
// connections and hosts one sandboxed subject replica per connection.
//
// An aid_runner (the binary in runner_main.cc, or a Runner embedded in a
// test/bench process) listens on a TCP port. Every accepted connection is
// served by a forked child process running proc::RunSubjectHost over a
// net::SocketChannel -- the exact loop the pipe transport execs into
// aid_subject_host, so a runner needs no binary besides itself and the
// whole SPEC -> READY -> RUN_TRIAL conversation is shared code.
//
// Fork-per-connection is what gives the daemon the same sandbox guarantee
// SubprocessTarget has locally: a subject that segfaults, aborts, or is
// SIGKILLed takes down its own child process and its one connection, never
// the daemon or the other hosted replicas. The engine observes the dropped
// connection as a crashed trial and reconnects (net::RemoteTarget).
//
// A Runner hosts as many replicas as connections it has accepted; the
// engine decides the fan-out (ParallelTarget clones = connections). There
// is no authentication or encryption on the wire -- see
// docs/remote_protocol.md for the trust model (private networks only).

#ifndef AID_NET_RUNNER_H_
#define AID_NET_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/socket.h"

namespace aid {

struct SharedHostStats;

struct RunnerOptions {
  /// Bind address. Default loopback: exposing a runner beyond the machine
  /// is an explicit decision (the protocol is unauthenticated).
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the outcome with Runner::port().
  int port = 0;
  int backlog = 64;
  /// Accept-loop tick: how often the daemon reaps exited session children
  /// and checks for Stop(). Purely internal latency tuning.
  int accept_poll_ms = 200;

  /// Extra per-trial latency every session child on this runner charges
  /// before answering, microseconds (SubjectHostOptions::trial_delay_us;
  /// `aid_runner --slow-us N`). The heterogeneous-fleet knob: benches and
  /// tests stand up one deliberately slow runner to exercise latency-aware
  /// placement and work stealing. 0 = full speed.
  uint64_t trial_delay_us = 0;

  /// Admission cap: with N live session children, the daemon answers the
  /// next connection itself -- HELLO, then a structured FAILED_PRECONDITION
  /// ERROR frame -- instead of forking another subject host
  /// (`aid_runner --max-sessions N`). Each session child is a whole subject
  /// replica; an unbounded fleet of engines could otherwise fork a runner
  /// machine into the ground. 0 = unlimited (the historical behavior).
  /// While at the cap, STATS connections are rejected too.
  int max_sessions = 0;
};

class Runner {
 public:
  /// Binds, starts the accept loop, and returns the live runner (its port
  /// is resolved even when options.port was 0). Unimplemented on platforms
  /// without sockets + fork.
  static Result<std::unique_ptr<Runner>> Start(RunnerOptions options = {});

  ~Runner();
  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  const std::string& host() const { return options_.host; }
  int port() const { return port_; }
  Endpoint endpoint() const { return Endpoint{options_.host, port_}; }

  /// Connections accepted (== subject replicas ever hosted).
  int sessions_started() const { return sessions_started_.load(); }

  /// The daemon's shared trial-statistics block (null when the mapping
  /// failed): one MAP_SHARED|MAP_ANONYMOUS page the accept loop hands every
  /// forked session child, so the totals any STATS connection reads cover
  /// every replica this node ever hosted. See proc/subject_host.h.
  const SharedHostStats* shared_stats() const { return shared_stats_; }

  /// Session children currently alive (exited ones are reaped first). The
  /// observability hook behind leak tests: a hung subject whose engine
  /// dropped the connection must leave this count, not grow it.
  int live_sessions();

  /// SIGKILLs every live session child without stopping the daemon: the
  /// chaos knob behind crash-recovery tests ("the machine lost its
  /// subjects but the runner survived"). Engines reconnect and respawn.
  void KillSessions();

  /// Stops accepting, kills all session children, joins the accept loop.
  /// Idempotent; the destructor calls it.
  void Stop();

 private:
  explicit Runner(RunnerOptions options) : options_(std::move(options)) {}

  void AcceptLoop();
  void ReapSessions(bool kill_first);

  RunnerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<int> sessions_started_{0};
  /// Pre-fork shared mapping (see shared_stats()); owned, munmap'd in ~.
  SharedHostStats* shared_stats_ = nullptr;
  uint64_t start_micros_ = 0;  ///< steady-clock daemon start, for uptime

  std::mutex sessions_mu_;
  std::vector<int64_t> session_pids_;

  std::thread accept_thread_;
};

/// `aid_runner --stats` client: connects to a runner at "host:port", sends
/// a STATS request through the shared wire protocol (HELLO -> STATS ->
/// STATS_REPLY, answered by a forked stats child like any session), and
/// returns the daemon's self-describing JSON stats document -- uptime,
/// sessions started, node-wide trial totals, and the trial latency
/// histogram on the telemetry bucket ladder. Unimplemented on platforms
/// without sockets.
Result<std::string> FetchRunnerStats(const std::string& endpoint,
                                     int timeout_ms = 5000);

}  // namespace aid

#endif  // AID_NET_RUNNER_H_
