// SocketChannel: the subject wire protocol over one TCP connection.
//
// The frames, deadlines, and failure vocabulary are exactly proc/wire.h's
// (the reads/writes go through the same EINTR-retrying, poll-bounded
// primitives); the only socket-specific behavior is ownership of the single
// full-duplex descriptor and mapping ECONNRESET to Aborted (handled in the
// shared primitives). A connection dropping mid-frame therefore classifies
// identically to a subject-host pipe closing: Aborted, "the peer died".

#ifndef AID_NET_CHANNEL_H_
#define AID_NET_CHANNEL_H_

#include <string_view>

#include "common/status.h"
#include "net/socket.h"
#include "proc/wire.h"

namespace aid {

class SocketChannel : public FrameChannel {
 public:
  /// Takes ownership of the connected socket `fd`.
  explicit SocketChannel(int fd) : fd_(fd) {}
  ~SocketChannel() override { Close(); }

  SocketChannel(const SocketChannel&) = delete;
  SocketChannel& operator=(const SocketChannel&) = delete;

  Status Write(ProcMsgType type, std::string_view payload,
               int deadline_ms = 0) override;
  Result<ProcFrame> Read(int deadline_ms = 0) override;
  void Close() override;
  bool open() const override { return fd_ >= 0; }
  std::string_view transport() const override { return "socket"; }

  int fd() const { return fd_; }

 private:
  int fd_;
};

}  // namespace aid

#endif  // AID_NET_CHANNEL_H_
