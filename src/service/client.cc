#include "service/client.h"

#include <utility>

#include "core/discovery_state.h"
#include "proc/wire.h"

namespace aid {

#if AID_NET_SUPPORTED

Result<std::unique_ptr<ServiceClient>> ServiceClient::Connect(
    const Endpoint& endpoint, int timeout_ms) {
  AID_ASSIGN_OR_RETURN(int fd, ConnectTo(endpoint, timeout_ms));
  auto channel = std::make_unique<SocketChannel>(fd);
  AID_ASSIGN_OR_RETURN(ProcFrame frame, channel->Read(timeout_ms));
  if (frame.type == ProcMsgType::kError) {
    AID_ASSIGN_OR_RETURN(ErrorMsg error, DecodeError(frame.payload));
    return error.ToStatus();
  }
  if (frame.type != ProcMsgType::kHello) {
    return Status::InvalidArgument(
        "service client: expected HELLO, got " +
        std::string(ServiceFrameName(frame.type)));
  }
  AID_ASSIGN_OR_RETURN(HelloMsg hello, DecodeServiceHello(frame.payload));
  if (hello.version != kServiceProtocolVersion) {
    return Status::InvalidArgument(
        "service client: protocol version mismatch (peer " +
        std::to_string(hello.version) + ", expected " +
        std::to_string(kServiceProtocolVersion) + ")");
  }
  return std::unique_ptr<ServiceClient>(new ServiceClient(std::move(channel)));
}

Result<AcceptedMsg> ServiceClient::Submit(const ServiceSubmission& submission) {
  SubmitMsg msg;
  msg.label = submission.label;
  AID_ASSIGN_OR_RETURN(msg.spec, EncodeSubjectSpec(submission.spec));
  WireWriter engine;
  EncodeEngineOptions(submission.engine, engine);
  msg.engine = engine.Release();
  msg.checkpoint_after_rounds = submission.checkpoint_after_rounds;
  msg.state = submission.resume_state;
  AID_RETURN_IF_ERROR(channel_->Write(AsProcMsgType(ServiceMsgType::kSubmit),
                                      EncodeSubmit(msg)));
  AID_ASSIGN_OR_RETURN(ProcFrame frame, channel_->Read());
  if (frame.type == ProcMsgType::kError) {
    AID_ASSIGN_OR_RETURN(ErrorMsg error, DecodeError(frame.payload));
    return error.ToStatus();
  }
  if (frame.type != AsProcMsgType(ServiceMsgType::kAccepted)) {
    return Status::InvalidArgument(
        "service client: expected ACCEPTED, got " +
        std::string(ServiceFrameName(frame.type)));
  }
  return DecodeAccepted(frame.payload);
}

Result<ServiceOutcome> ServiceClient::Await(int timeout_ms) {
  AID_ASSIGN_OR_RETURN(ProcFrame frame, channel_->Read(timeout_ms));
  if (frame.type == ProcMsgType::kError) {
    AID_ASSIGN_OR_RETURN(ErrorMsg error, DecodeError(frame.payload));
    return error.ToStatus();
  }
  ServiceOutcome outcome;
  if (frame.type == AsProcMsgType(ServiceMsgType::kReport)) {
    AID_ASSIGN_OR_RETURN(ReportMsg report, DecodeReportMsg(frame.payload));
    outcome.report = std::move(report.report);
    return outcome;
  }
  if (frame.type == AsProcMsgType(ServiceMsgType::kCheckpoint)) {
    outcome.checkpointed = true;
    AID_ASSIGN_OR_RETURN(outcome.checkpoint,
                         DecodeCheckpoint(frame.payload));
    return outcome;
  }
  return Status::InvalidArgument(
      "service client: expected REPORT, CHECKPOINT or ERROR, got " +
      std::string(ServiceFrameName(frame.type)));
}

#else  // !AID_NET_SUPPORTED

Result<std::unique_ptr<ServiceClient>> ServiceClient::Connect(const Endpoint&,
                                                              int) {
  return Status::Unimplemented(
      "ServiceClient: sockets are unavailable on this platform");
}

Result<AcceptedMsg> ServiceClient::Submit(const ServiceSubmission&) {
  return Status::Unimplemented(
      "ServiceClient: sockets are unavailable on this platform");
}

Result<ServiceOutcome> ServiceClient::Await(int) {
  return Status::Unimplemented(
      "ServiceClient: sockets are unavailable on this platform");
}

#endif  // AID_NET_SUPPORTED

}  // namespace aid
