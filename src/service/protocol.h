// The aid_service wire protocol (version 1).
//
// A discovery client and the multi-tenant service daemon (service.h) speak
// the same length-prefixed frames as the subject protocol -- [u32 length]
// [u8 type][payload], little-endian, carried by any FrameChannel -- with
// the service's message types allocated from 32 upward so they can never
// collide with the subject conversation's types (proc/wire.h, 1..12).
// ERROR frames are shared verbatim: a service-side failure arrives as the
// same structured Status the subject protocol uses.
//
// The conversation (one connection = one session):
//
//   service -> client  HELLO      service magic "AIDS", version, pid
//   client  -> service SUBMIT     label, SubjectSpec bytes, EngineOptions
//                                 bytes, checkpoint-after-rounds, optional
//                                 DiscoveryState bytes (resume)
//   service -> client  ACCEPTED   session id, resumed flag
//                   or ERROR      admission rejection (session cap, bad
//                                 spec/options/state)
//   ...                the service interleaves this session's rounds with
//                      every other live session's...
//   service -> client  REPORT     the final DiscoveryReport
//                   or CHECKPOINT serialized DiscoveryState at the round
//                                 boundary the SUBMIT asked for
//                   or ERROR      the discovery failed (target error,
//                                 session quota exceeded)
//
// A CHECKPOINT detaches the session: the service forgets it, and the
// client (or any other client, on any host running the service's subjects)
// resumes by submitting the state bytes with the same SubjectSpec. Reports
// are bit-identical to an uninterrupted solo run (SameDiscoveryOutcome and
// beyond) -- see docs/service.md.

#ifndef AID_SERVICE_PROTOCOL_H_
#define AID_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/engine.h"
#include "proc/wire.h"
#include "trace/serialize.h"

namespace aid {

inline constexpr uint32_t kServiceMagic = 0x41494453;  // "AIDS"
inline constexpr uint32_t kServiceProtocolVersion = 1;

/// Service frame types, disjoint from ProcMsgType's 1..12 so a frame can
/// never be mistaken for the subject conversation. Cast through
/// AsProcMsgType for FrameChannel I/O (scoped enums with a fixed underlying
/// type carry any value of that type).
enum class ServiceMsgType : uint8_t {
  kSubmit = 32,
  kAccepted = 33,
  kReport = 34,
  kCheckpoint = 35,
};

constexpr ProcMsgType AsProcMsgType(ServiceMsgType type) {
  return static_cast<ProcMsgType>(static_cast<uint8_t>(type));
}

/// Name for error messages; understands both service types and the shared
/// proc types (HELLO, ERROR).
std::string_view ServiceFrameName(ProcMsgType type);

/// SUBMIT: everything the service needs to run (or resume) one discovery.
struct SubmitMsg {
  /// Session label: the per-session telemetry tag ({"session", label}) and
  /// the name error messages use. Need not be unique.
  std::string label;
  /// EncodeSubjectSpec bytes: which subject to debug. On resume this must
  /// describe the same subject the checkpoint came from (the state blob
  /// carries no topology).
  std::string spec;
  /// EncodeEngineOptions bytes (core/discovery_state.h). On resume the
  /// checkpoint carries the options the discovery started with, and these
  /// bytes only shape the rebuilt target (parallelism).
  std::string engine;
  /// When > 0, the service checkpoints the session at the first action
  /// boundary with this many rounds recorded and answers CHECKPOINT
  /// instead of REPORT. 0 = run to completion.
  uint64_t checkpoint_after_rounds = 0;
  /// DiscoveryState::Serialize bytes to resume from; empty = fresh run.
  std::string state;
};

struct AcceptedMsg {
  uint64_t session_id = 0;
  bool resumed = false;
};

/// CHECKPOINT: the session's serialized state at the requested boundary,
/// plus progress numbers for operator display.
struct CheckpointMsg {
  uint64_t session_id = 0;
  uint64_t rounds = 0;
  uint64_t executions = 0;
  std::string state;
};

/// REPORT: the finished session's DiscoveryReport.
struct ReportMsg {
  uint64_t session_id = 0;
  DiscoveryReport report;
};

/// Decodes a service HELLO: HelloMsg's wire layout, but stamped with the
/// service magic (proc's DecodeHello would reject it). Distinguishes an
/// aid_service from an aid_runner at connect time.
Result<HelloMsg> DecodeServiceHello(std::string_view payload);

std::string EncodeSubmit(const SubmitMsg& msg);
Result<SubmitMsg> DecodeSubmit(std::string_view payload);
std::string EncodeAccepted(const AcceptedMsg& msg);
Result<AcceptedMsg> DecodeAccepted(std::string_view payload);
std::string EncodeCheckpoint(const CheckpointMsg& msg);
Result<CheckpointMsg> DecodeCheckpoint(std::string_view payload);
std::string EncodeReportMsg(const ReportMsg& msg);
Result<ReportMsg> DecodeReportMsg(std::string_view payload);

/// DiscoveryReport codec: every decision-bearing and accounting field the
/// engine computes (path, verdicts, rounds/executions, history, budgeting,
/// confidence). AnalysisSummary stays process-local -- it describes how the
/// serving process obtained the result, not the result.
void EncodeDiscoveryReport(const DiscoveryReport& report, WireWriter& writer);
Result<DiscoveryReport> DecodeDiscoveryReport(WireReader& reader);

}  // namespace aid

#endif  // AID_SERVICE_PROTOCOL_H_
