// aid_service: the multi-tenant discovery daemon.
//
// Listens on a TCP port and multiplexes N concurrent causal-path
// discoveries over one shared execution substrate -- see src/service/
// service.h and docs/service.md.
//
// Usage: aid_service [--host H] [--port P] [--workers N] [--max-sessions N]
//                    [--quota N] [--fleet H:P,H:P] [--metrics-out FILE]
//
//   --host          bind address (default 127.0.0.1; 0.0.0.0 exposes the
//                   unauthenticated protocol to the network -- private
//                   networks only)
//   --port          listen port (default 7602; 0 = ephemeral)
//   --workers       session worker threads (default 2): the daemon's
//                   cross-session execution parallelism
//   --max-sessions  admission cap on concurrent sessions (default 8;
//                   0 = unlimited); further SUBMITs get a structured
//                   FAILED_PRECONDITION ERROR frame
//   --quota         per-session execution quota (default 0 = none):
//                   budgeted sessions get their global budget clamped to
//                   it, unbudgeted sessions crossing it are stopped with
//                   an ERROR
//   --fleet         comma-separated aid_runner endpoints every session's
//                   intervention replicas run on (default empty =
//                   in-process targets)
//   --metrics-out   write the daemon's metrics snapshot (MetricsJson) to
//                   FILE at shutdown -- per-session labeled counters
//                   included; CI validates multi-session runs from it
//
// Prints "aid_service listening on H:P" once ready (scripts scrape it) and
// runs until SIGINT/SIGTERM.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/service.h"
#include "telemetry/telemetry.h"

#if AID_NET_SUPPORTED
#include <signal.h>
#include <unistd.h>

namespace {

volatile sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }

std::vector<std::string> SplitFleet(const std::string& list) {
  std::vector<std::string> endpoints;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    if (comma > start) endpoints.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return endpoints;
}

}  // namespace
#endif

int main(int argc, char** argv) {
  if (!aid::RemoteFleetSupported()) {
    std::fprintf(stderr, "aid_service: unsupported on this platform\n");
    return 3;
  }
#if AID_NET_SUPPORTED
  aid::ServiceOptions options;
  options.port = 7602;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      options.workers = std::atoi(argv[++i]);
    } else if (arg == "--max-sessions" && i + 1 < argc) {
      const int cap = std::atoi(argv[++i]);
      options.max_sessions = cap > 0 ? cap : 0;
    } else if (arg == "--quota" && i + 1 < argc) {
      const long long quota = std::atoll(argv[++i]);
      options.session_quota = quota > 0 ? static_cast<uint64_t>(quota) : 0;
    } else if (arg == "--fleet" && i + 1 < argc) {
      options.fleet = SplitFleet(argv[++i]);
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: aid_service [--host H] [--port P] [--workers N] "
                   "[--max-sessions N] [--quota N]\n"
                   "                   [--fleet H:P,H:P] "
                   "[--metrics-out FILE]\n");
      return 2;
    }
  }
  options.telemetry = aid::Telemetry::Create();

  auto service = aid::DiscoveryService::Start(options);
  if (!service.ok()) {
    std::fprintf(stderr, "aid_service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  std::printf("aid_service listening on %s:%d\n", (*service)->host().c_str(),
              (*service)->port());
  std::fflush(stdout);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStop;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  while (g_stop == 0) {
    ::usleep(100 * 1000);
  }
  (*service)->Stop();
  if (!metrics_out.empty()) {
    const std::string json =
        aid::MetricsJson(options.telemetry->Snapshot().metrics);
    std::FILE* file = std::fopen(metrics_out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "aid_service: cannot write %s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
  }
  std::printf("aid_service: stopped (%llu sessions served)\n",
              static_cast<unsigned long long>((*service)->sessions_accepted()));
  return 0;
#else
  return 3;
#endif
}
