// DiscoveryService: the multi-tenant discovery daemon (aid_service).
//
// One long-lived process multiplexes N concurrent causal-path discoveries
// over one shared execution substrate. Each accepted connection is one
// session: the client SUBMITs a SubjectSpec + EngineOptions (or a
// checkpoint to resume), and the service drives that session's
// DiscoveryState (core/discovery_state.h) one action at a time,
// interleaved round-robin with every other live session -- the state
// machine split is exactly what makes a blocking Run() loop schedulable.
//
// Scheduling is cooperative and fair: a FIFO run queue of session ids, a
// small worker pool, one action (one intervention round, or one batched
// scan) per session per turn, requeue at the tail. A session with 30
// rounds left cannot starve a session with 2; wall-clock interleaves
// proportionally to round cost.
//
// Admission control: at `max_sessions` live sessions, further SUBMITs get
// a structured FAILED_PRECONDITION ERROR frame (the aid_runner
// --max-sessions pattern one layer up). `session_quota` caps what any one
// session may spend: budgeted sessions have their BudgetOptions::
// max_executions clamped to the quota (they degrade gracefully into
// best-effort reports with per-candidate confidence); unbudgeted sessions
// are hard-stopped with an ERROR when they cross it.
//
// Checkpoint/resume: a SUBMIT with checkpoint_after_rounds > 0 detaches
// the session at that round boundary and ships the serialized
// DiscoveryState back (CHECKPOINT frame); any client may later resume it
// -- on this daemon or another host -- by submitting the state bytes with
// the same SubjectSpec. Resumed runs finish with reports bit-identical to
// uninterrupted ones.
//
// Telemetry: with a Telemetry bundle attached, the service maintains
// per-session labeled counters (aid_service_rounds_total{session=label},
// aid_service_executions_total{...}, aid_service_turns_total{...}) plus
// daemon-wide admission/outcome counters. The engine-level telemetry hooks
// stay OFF inside sessions: the tracer's single active-parent slot and the
// unlabeled aid_* counters assume one discovery per process, and
// interleaved sessions would race them. See docs/service.md.

#ifndef AID_SERVICE_SERVICE_H_
#define AID_SERVICE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/socket.h"
#include "telemetry/telemetry.h"

namespace aid {

struct ServiceOptions {
  /// Bind address. Default loopback: the protocol is unauthenticated, like
  /// the runner's (docs/remote_protocol.md trust model).
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the outcome with DiscoveryService::port().
  int port = 0;
  int backlog = 16;
  /// Accept-loop tick; doubles as the Stop() latency bound.
  int accept_poll_ms = 200;
  /// Worker threads executing session actions. Each worker drives one
  /// session's action at a time, so this is the daemon's cross-session
  /// execution parallelism.
  int workers = 2;
  /// Admission cap on concurrent live sessions; 0 = unlimited.
  int max_sessions = 8;
  /// Per-session execution quota; 0 = none. Budgeted sessions get their
  /// global budget clamped to it; unbudgeted sessions that cross it are
  /// stopped with an ERROR.
  uint64_t session_quota = 0;
  /// Runner endpoints ("host:port") every session's intervention replicas
  /// are placed on. Empty = in-process targets.
  std::vector<std::string> fleet;
  /// Optional daemon telemetry (per-session labeled counters). The bundle
  /// is shared with nothing else; see the header comment for why engine
  /// spans stay off.
  std::shared_ptr<Telemetry> telemetry;
};

class DiscoveryService {
 public:
  /// Binds, starts the accept loop and worker pool, and returns the live
  /// daemon. Unimplemented on platforms without sockets.
  static Result<std::unique_ptr<DiscoveryService>> Start(
      ServiceOptions options = {});

  ~DiscoveryService();
  DiscoveryService(const DiscoveryService&) = delete;
  DiscoveryService& operator=(const DiscoveryService&) = delete;

  const std::string& host() const;
  int port() const;
  Endpoint endpoint() const;

  /// Sessions currently live (admitted, not yet reported / checkpointed /
  /// failed).
  int live_sessions();
  /// Sessions ever admitted (resumed ones included).
  uint64_t sessions_accepted() const;

  /// Stops accepting, drains nothing: live sessions get a best-effort
  /// "service shutting down" ERROR and are dropped. Idempotent; the
  /// destructor calls it.
  void Stop();

 private:
  class Impl;
  explicit DiscoveryService(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace aid

#endif  // AID_SERVICE_SERVICE_H_
