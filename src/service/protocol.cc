#include "service/protocol.h"

#include <utility>

namespace aid {

namespace {

void EncodePreds(const std::vector<PredicateId>& preds, WireWriter& w) {
  w.U32(static_cast<uint32_t>(preds.size()));
  for (PredicateId id : preds) w.I32(id);
}

std::vector<PredicateId> DecodePreds(WireReader& r) {
  const uint32_t count = r.Count(sizeof(int32_t));
  std::vector<PredicateId> preds;
  preds.reserve(count);
  for (uint32_t i = 0; i < count; ++i) preds.push_back(r.I32());
  return preds;
}

}  // namespace

std::string_view ServiceFrameName(ProcMsgType type) {
  switch (static_cast<uint8_t>(type)) {
    case static_cast<uint8_t>(ServiceMsgType::kSubmit):
      return "SUBMIT";
    case static_cast<uint8_t>(ServiceMsgType::kAccepted):
      return "ACCEPTED";
    case static_cast<uint8_t>(ServiceMsgType::kReport):
      return "REPORT";
    case static_cast<uint8_t>(ServiceMsgType::kCheckpoint):
      return "CHECKPOINT";
    default:
      return ProcMsgTypeName(type);
  }
}

Result<HelloMsg> DecodeServiceHello(std::string_view payload) {
  WireReader r(payload);
  HelloMsg msg;
  msg.magic = r.U32();
  msg.version = r.U32();
  msg.pid = r.U64();
  AID_RETURN_IF_ERROR(r.Finish());
  if (msg.magic != kServiceMagic) {
    return Status::InvalidArgument(
        msg.magic == kProcMagic
            ? "service: peer speaks the subject protocol (an aid_runner?), "
              "not the aid_service protocol"
            : "service: HELLO magic mismatch (not an aid_service)");
  }
  return msg;
}

std::string EncodeSubmit(const SubmitMsg& msg) {
  WireWriter w;
  w.Str(msg.label);
  w.Str(msg.spec);
  w.Str(msg.engine);
  w.U64(msg.checkpoint_after_rounds);
  w.Str(msg.state);
  return w.Release();
}

Result<SubmitMsg> DecodeSubmit(std::string_view payload) {
  WireReader r(payload);
  SubmitMsg msg;
  msg.label = r.Str();
  msg.spec = r.Str();
  msg.engine = r.Str();
  msg.checkpoint_after_rounds = r.U64();
  msg.state = r.Str();
  AID_RETURN_IF_ERROR(r.Finish());
  return msg;
}

std::string EncodeAccepted(const AcceptedMsg& msg) {
  WireWriter w;
  w.U64(msg.session_id);
  w.U8(msg.resumed ? 1 : 0);
  return w.Release();
}

Result<AcceptedMsg> DecodeAccepted(std::string_view payload) {
  WireReader r(payload);
  AcceptedMsg msg;
  msg.session_id = r.U64();
  msg.resumed = r.U8() != 0;
  AID_RETURN_IF_ERROR(r.Finish());
  return msg;
}

std::string EncodeCheckpoint(const CheckpointMsg& msg) {
  WireWriter w;
  w.U64(msg.session_id);
  w.U64(msg.rounds);
  w.U64(msg.executions);
  w.Str(msg.state);
  return w.Release();
}

Result<CheckpointMsg> DecodeCheckpoint(std::string_view payload) {
  WireReader r(payload);
  CheckpointMsg msg;
  msg.session_id = r.U64();
  msg.rounds = r.U64();
  msg.executions = r.U64();
  msg.state = r.Str();
  AID_RETURN_IF_ERROR(r.Finish());
  return msg;
}

void EncodeDiscoveryReport(const DiscoveryReport& report, WireWriter& w) {
  EncodePreds(report.causal_path, w);
  EncodePreds(report.spurious, w);
  w.U64(report.rounds);
  w.U64(report.executions);
  w.U64(report.speculative_executions);
  w.U64(report.respawns);
  w.U64(report.crashed_trials);
  w.U64(report.timed_out_trials);
  w.U64(report.steals);
  w.U64(report.straggler_wait_micros);
  w.U32(static_cast<uint32_t>(report.replica_trials.size()));
  for (uint64_t trials : report.replica_trials) w.U64(trials);
  w.U32(static_cast<uint32_t>(report.history.size()));
  for (const InterventionRound& round : report.history) {
    EncodePreds(round.intervened, w);
    w.U8(round.failure_stopped ? 1 : 0);
    w.Str(round.phase);
  }
  w.U8(report.path_is_chain ? 1 : 0);
  w.U64(report.budgeted_trials_allocated);
  w.I64(report.budgeted_trials_saved);
  w.U64(report.budget_early_stops);
  w.U8(report.budget_exhausted ? 1 : 0);
  w.U32(static_cast<uint32_t>(report.confidence.size()));
  for (const PredicateConfidence& conf : report.confidence) {
    w.I32(conf.id);
    w.F64(conf.causal_posterior);
  }
}

Result<DiscoveryReport> DecodeDiscoveryReport(WireReader& r) {
  DiscoveryReport report;
  report.causal_path = DecodePreds(r);
  report.spurious = DecodePreds(r);
  report.rounds = r.U64();
  report.executions = r.U64();
  report.speculative_executions = r.U64();
  report.respawns = r.U64();
  report.crashed_trials = r.U64();
  report.timed_out_trials = r.U64();
  report.steals = r.U64();
  report.straggler_wait_micros = r.U64();
  const uint32_t replicas = r.Count(sizeof(uint64_t));
  report.replica_trials.reserve(replicas);
  for (uint32_t i = 0; i < replicas; ++i) {
    report.replica_trials.push_back(r.U64());
  }
  // Min wire size of a history round: empty preds (4) + flag (1) + empty
  // phase string (4).
  const uint32_t rounds = r.Count(9);
  report.history.reserve(rounds);
  for (uint32_t i = 0; i < rounds; ++i) {
    InterventionRound round;
    round.intervened = DecodePreds(r);
    round.failure_stopped = r.U8() != 0;
    round.phase = r.Str();
    report.history.push_back(std::move(round));
  }
  report.path_is_chain = r.U8() != 0;
  report.budgeted_trials_allocated = r.U64();
  report.budgeted_trials_saved = r.I64();
  report.budget_early_stops = r.U64();
  report.budget_exhausted = r.U8() != 0;
  const uint32_t confidences = r.Count(sizeof(int32_t) + sizeof(double));
  report.confidence.reserve(confidences);
  for (uint32_t i = 0; i < confidences; ++i) {
    PredicateConfidence conf;
    conf.id = r.I32();
    conf.causal_posterior = r.F64();
    report.confidence.push_back(conf);
  }
  if (!r.ok()) return r.status();
  return report;
}

std::string EncodeReportMsg(const ReportMsg& msg) {
  WireWriter w;
  w.U64(msg.session_id);
  EncodeDiscoveryReport(msg.report, w);
  return w.Release();
}

Result<ReportMsg> DecodeReportMsg(std::string_view payload) {
  WireReader r(payload);
  ReportMsg msg;
  msg.session_id = r.U64();
  AID_ASSIGN_OR_RETURN(msg.report, DecodeDiscoveryReport(r));
  AID_RETURN_IF_ERROR(r.Finish());
  return msg;
}

}  // namespace aid
