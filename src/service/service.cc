#include "service/service.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <optional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#if AID_NET_SUPPORTED
#include <unistd.h>
#endif

#include "api/target_factory.h"
#include "casestudies/case_study.h"
#include "common/logging.h"
#include "core/discovery_state.h"
#include "exec/replicable.h"
#include "net/channel.h"
#include "proc/subject_spec.h"
#include "service/protocol.h"

namespace aid {

#if AID_NET_SUPPORTED

namespace {

/// Deadline on any one admission/reply frame. The conversation is one
/// round trip; the bound only caps a stalled peer.
constexpr int kFrameDeadlineMs = 30000;

}  // namespace

class DiscoveryService::Impl {
 public:
  explicit Impl(ServiceOptions options) : options_(std::move(options)) {
    if (options_.accept_poll_ms <= 0) options_.accept_poll_ms = 200;
    if (options_.workers <= 0) options_.workers = 1;
  }

  ~Impl() { Stop(); }

  Status Start() {
    AID_ASSIGN_OR_RETURN(
        listen_fd_,
        ListenOn(options_.host, options_.port, options_.backlog));
    AID_ASSIGN_OR_RETURN(port_, BoundPort(listen_fd_));
    if (options_.telemetry != nullptr) {
      MetricsRegistry& metrics = options_.telemetry->metrics();
      sessions_counter_ = metrics.GetCounter("aid_service_sessions_total");
      rejections_counter_ =
          metrics.GetCounter("aid_service_rejections_total");
      reports_counter_ = metrics.GetCounter("aid_service_reports_total");
      checkpoints_counter_ =
          metrics.GetCounter("aid_service_checkpoints_total");
      failures_counter_ = metrics.GetCounter("aid_service_failures_total");
    }
    accept_thread_ = std::thread([this]() { AcceptLoop(); });
    for (int i = 0; i < options_.workers; ++i) {
      workers_.emplace_back([this]() { WorkerLoop(); });
    }
    return Status::OK();
  }

  void Stop() {
    if (stopping_.exchange(true)) {
      if (accept_thread_.joinable()) accept_thread_.join();
      for (std::thread& worker : workers_) {
        if (worker.joinable()) worker.join();
      }
      return;
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    cv_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Sessions still live never finished; tell their clients why.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, session] : sessions_) {
      (void)session->channel->Write(
          ProcMsgType::kError,
          EncodeError(Status::Aborted("service shutting down")),
          /*deadline_ms=*/1000);
    }
    sessions_.clear();
    runnable_.clear();
  }

  const std::string& host() const { return options_.host; }
  int port() const { return port_; }

  int live_sessions() {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(sessions_.size());
  }

  uint64_t sessions_accepted() const { return sessions_accepted_.load(); }

 private:
  /// One live discovery: the client connection, the subject rebuilt from
  /// its spec (spec/study own the model/program the target borrows), and
  /// the resumable state machine being interleaved.
  struct Session {
    uint64_t id = 0;
    std::string label;
    std::unique_ptr<SocketChannel> channel;
    OwnedSubjectSpec spec;
    std::unique_ptr<CaseStudy> study;  ///< kCase: owns program + options
    std::unique_ptr<SessionTarget> target;
    std::optional<AcDag> dag;
    std::unique_ptr<DiscoveryState> state;
    uint64_t checkpoint_after_rounds = 0;
    /// session_quota with budgeting off: the scheduler stops the session
    /// itself (budgeted sessions have the quota folded into their global
    /// execution budget instead and degrade gracefully).
    bool quota_enforced_externally = false;

    /// Per-session labeled instruments (null without telemetry) and the
    /// values already folded into them, so every turn adds only deltas.
    Counter* rounds_counter = nullptr;
    Counter* executions_counter = nullptr;
    Counter* turns_counter = nullptr;
    uint64_t folded_rounds = 0;
    uint64_t folded_executions = 0;
  };

  void AcceptLoop() {
    while (!stopping_.load()) {
      Result<int> conn = AcceptConnection(listen_fd_, options_.accept_poll_ms);
      if (!conn.ok()) {
        if (conn.status().code() == StatusCode::kDeadlineExceeded) continue;
        return;  // listen socket broke (or Stop() is tearing down)
      }
      Admit(*conn);
    }
  }

  /// The whole admission conversation: HELLO out, SUBMIT in, session built,
  /// ACCEPTED (or structured ERROR) out. Runs on the accept thread, so
  /// admissions are serial and the cap check cannot race itself.
  void Admit(int conn_fd) {
    auto channel = std::make_unique<SocketChannel>(conn_fd);
    HelloMsg hello;
    hello.magic = kServiceMagic;
    hello.version = kServiceProtocolVersion;
    hello.pid = static_cast<uint64_t>(::getpid());
    if (!channel->Write(ProcMsgType::kHello, EncodeHello(hello),
                        kFrameDeadlineMs)
             .ok()) {
      return;
    }
    Result<ProcFrame> frame = channel->Read(kFrameDeadlineMs);
    if (!frame.ok()) return;
    if (frame->type != AsProcMsgType(ServiceMsgType::kSubmit)) {
      Reject(*channel,
             Status::InvalidArgument(
                 "service: expected SUBMIT, got " +
                 std::string(ServiceFrameName(frame->type))));
      return;
    }
    Result<SubmitMsg> submit = DecodeSubmit(frame->payload);
    if (!submit.ok()) {
      Reject(*channel, submit.status());
      return;
    }
    if (options_.max_sessions > 0 &&
        live_sessions() >= options_.max_sessions) {
      Reject(*channel,
             Status::FailedPrecondition(
                 "service at its session cap (--max-sessions " +
                 std::to_string(options_.max_sessions) +
                 "): retry once a session finishes or raise the cap"));
      return;
    }
    Result<std::unique_ptr<Session>> session = BuildSession(std::move(*submit));
    if (!session.ok()) {
      Reject(*channel, session.status());
      return;
    }
    (*session)->channel = std::move(channel);
    AcceptedMsg accepted;
    accepted.session_id = (*session)->id;
    accepted.resumed = (*session)->folded_rounds > 0;
    if (!(*session)
             ->channel
             ->Write(AsProcMsgType(ServiceMsgType::kAccepted),
                     EncodeAccepted(accepted), kFrameDeadlineMs)
             .ok()) {
      return;  // client hung up before the answer; drop the session
    }
    sessions_accepted_.fetch_add(1);
    if (sessions_counter_ != nullptr) sessions_counter_->Add();
    {
      std::lock_guard<std::mutex> lock(mu_);
      const uint64_t id = (*session)->id;
      sessions_.emplace(id, std::move(*session));
      runnable_.push_back(id);
    }
    cv_.notify_one();
  }

  void Reject(SocketChannel& channel, const Status& status) {
    if (rejections_counter_ != nullptr) rejections_counter_->Add();
    (void)channel.Write(ProcMsgType::kError, EncodeError(status),
                        kFrameDeadlineMs);
  }

  Result<std::unique_ptr<Session>> BuildSession(SubmitMsg msg) {
    auto session = std::make_unique<Session>();
    session->id = next_session_id_.fetch_add(1);
    session->label = msg.label.empty()
                         ? "session-" + std::to_string(session->id)
                         : std::move(msg.label);
    session->checkpoint_after_rounds = msg.checkpoint_after_rounds;
    AID_ASSIGN_OR_RETURN(session->spec, DecodeSubjectSpec(msg.spec));

    const bool resuming = !msg.state.empty();
    EngineOptions engine;
    if (!msg.engine.empty()) {
      WireReader reader(msg.engine);
      AID_ASSIGN_OR_RETURN(engine, DecodeEngineOptions(reader));
      AID_RETURN_IF_ERROR(reader.Finish());
    }
    if (!resuming) {
      // Fold the daemon's per-session quota into the adaptive budget; with
      // budgeting off the scheduler enforces it externally instead.
      if (options_.session_quota > 0 && engine.budget.enabled) {
        engine.budget.max_executions =
            engine.budget.max_executions == 0
                ? options_.session_quota
                : std::min(engine.budget.max_executions,
                           options_.session_quota);
      }
      AID_RETURN_IF_ERROR(ValidateDiscoveryOptions(engine));
    }

    AID_RETURN_IF_ERROR(BuildTarget(*session, engine.parallelism));
    AID_ASSIGN_OR_RETURN(AcDag dag, session->target->BuildAcDag());
    session->dag.emplace(std::move(dag));

    if (resuming) {
      // The checkpoint carries the options the discovery started with
      // (SUBMIT's engine bytes only shaped the rebuilt target above).
      AID_ASSIGN_OR_RETURN(
          session->state,
          DiscoveryState::Deserialize(&*session->dag, msg.state,
                                      /*observer=*/nullptr,
                                      /*telemetry=*/nullptr));
      // Positional nondeterminism (flaky manifestation flips, injected
      // faults) is a pure function of the global trial index, so parking
      // the rebuilt target at the checkpoint's spend ledger replays the
      // uninterrupted run's coin flips exactly (exec/replicable.h).
      if (auto* replicable = dynamic_cast<ReplicableTarget*>(
              session->target->intervention_target())) {
        replicable->SeekTrial(session->state->executions());
      }
    } else {
      engine.observer = nullptr;
      engine.telemetry = nullptr;  // see the header: engine spans stay off
      session->state = std::make_unique<DiscoveryState>(
          &*session->dag, engine, Rng(engine.seed));
    }
    session->quota_enforced_externally =
        options_.session_quota > 0 &&
        !session->state->options().budget.enabled;
    session->folded_rounds = session->state->next_round_index() - 1;
    session->folded_executions = session->state->executions();

    if (options_.telemetry != nullptr) {
      MetricsRegistry& metrics = options_.telemetry->metrics();
      const MetricLabels labels = {{"session", session->label}};
      session->rounds_counter =
          metrics.GetCounter("aid_service_rounds_total", labels);
      session->executions_counter =
          metrics.GetCounter("aid_service_executions_total", labels);
      session->turns_counter =
          metrics.GetCounter("aid_service_turns_total", labels);
      // A resumed session's pre-checkpoint work was counted where it ran;
      // only the rounds executed HERE are folded in (folded_* above).
    }
    return session;
  }

  /// Rebuilds the intervention substrate a SubjectSpec describes, shared
  /// with the daemon's runner fleet. The spec/study stay alive inside the
  /// session; the target borrows them.
  Status BuildTarget(Session& session, int parallelism) {
    if (parallelism <= 0) parallelism = 1;
    switch (session.spec.kind) {
      case SubjectKind::kModel:
      case SubjectKind::kFlakyModel: {
        const bool flaky = session.spec.kind == SubjectKind::kFlakyModel;
        AID_ASSIGN_OR_RETURN(
            session.target,
            MakeModelSessionTarget(
                session.spec.model.get(),
                flaky ? session.spec.manifest_probability : 1.0,
                session.spec.flaky_seed, flaky ? "flaky" : "model",
                parallelism, Isolation::kInProcess, {}, options_.fleet));
        return Status::OK();
      }
      case SubjectKind::kCase: {
        AID_ASSIGN_OR_RETURN(CaseStudy study,
                             MakeCaseStudyByKey(session.spec.case_key));
        session.study = std::make_unique<CaseStudy>(std::move(study));
        AID_ASSIGN_OR_RETURN(
            session.target,
            MakeVmSessionTarget(&session.study->program,
                                session.study->target_options, "case",
                                parallelism, Isolation::kInProcess, {},
                                options_.fleet));
        return Status::OK();
      }
      case SubjectKind::kVmProgram: {
        AID_ASSIGN_OR_RETURN(
            session.target,
            MakeVmSessionTarget(session.spec.program.get(), session.spec.vm,
                                "vm", parallelism, Isolation::kInProcess, {},
                                options_.fleet));
        return Status::OK();
      }
    }
    return Status::InvalidArgument("service: unknown subject kind");
  }

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      cv_.wait(lock, [this]() {
        return stopping_.load() || !runnable_.empty();
      });
      if (stopping_.load()) return;
      const uint64_t id = runnable_.front();
      runnable_.pop_front();
      Session* session = sessions_.at(id).get();
      // One worker owns the session for the whole turn (its id is out of
      // the queue), so target I/O runs without the lock.
      lock.unlock();
      const bool finished = RunOneTurn(*session);
      lock.lock();
      if (finished) {
        sessions_.erase(id);
      } else {
        runnable_.push_back(id);
        cv_.notify_one();
      }
    }
  }

  /// One scheduling turn: checkpoint / quota checks at the boundary, then
  /// at most ONE action (one round, or one batched scan) planned, executed
  /// and absorbed. Returns true when the session is finished or detached.
  bool RunOneTurn(Session& session) {
    if (session.turns_counter != nullptr) session.turns_counter->Add();
    const uint64_t rounds_so_far = session.state->next_round_index() - 1;

    if (session.checkpoint_after_rounds > 0 &&
        rounds_so_far >= session.checkpoint_after_rounds &&
        !session.state->done()) {
      Result<std::string> blob = session.state->Serialize();
      if (!blob.ok()) return Fail(session, blob.status());
      CheckpointMsg msg;
      msg.session_id = session.id;
      msg.rounds = rounds_so_far;
      msg.executions = session.state->executions();
      msg.state = std::move(*blob);
      if (checkpoints_counter_ != nullptr) checkpoints_counter_->Add();
      (void)session.channel->Write(AsProcMsgType(ServiceMsgType::kCheckpoint),
                                   EncodeCheckpoint(msg), kFrameDeadlineMs);
      return true;
    }

    if (session.quota_enforced_externally && !session.state->done() &&
        session.state->executions() >= options_.session_quota) {
      return Fail(session,
                  Status::FailedPrecondition(
                      "session '" + session.label +
                      "' exceeded its execution quota (" +
                      std::to_string(options_.session_quota) +
                      "); resubmit with adaptive budgeting to degrade "
                      "gracefully instead"));
    }

    Result<DiscoveryAction> action = session.state->NextAction();
    if (!action.ok()) return Fail(session, action.status());
    if (action->kind == DiscoveryAction::Kind::kDone) {
      Result<DiscoveryReport> report = session.state->Finalize();
      if (!report.ok()) return Fail(session, report.status());
      FoldSessionCounters(session);
      ReportMsg msg;
      msg.session_id = session.id;
      msg.report = std::move(*report);
      if (reports_counter_ != nullptr) reports_counter_->Add();
      (void)session.channel->Write(AsProcMsgType(ServiceMsgType::kReport),
                                   EncodeReportMsg(msg), kFrameDeadlineMs);
      return true;
    }

    Result<ActionOutcome> outcome = ExecuteDiscoveryAction(
        *session.state, *action, session.target->intervention_target());
    if (!outcome.ok()) return Fail(session, outcome.status());
    const Status fed = session.state->Feed(*action, *outcome);
    if (!fed.ok()) return Fail(session, fed);
    FoldSessionCounters(session);
    return false;
  }

  bool Fail(Session& session, const Status& status) {
    if (failures_counter_ != nullptr) failures_counter_->Add();
    (void)session.channel->Write(ProcMsgType::kError, EncodeError(status),
                                 kFrameDeadlineMs);
    return true;
  }

  void FoldSessionCounters(Session& session) {
    if (session.rounds_counter == nullptr) return;
    const uint64_t rounds = session.state->next_round_index() - 1;
    const uint64_t executions = session.state->executions();
    session.rounds_counter->Add(rounds - session.folded_rounds);
    session.executions_counter->Add(executions - session.folded_executions);
    session.folded_rounds = rounds;
    session.folded_executions = executions;
  }

  ServiceOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> sessions_accepted_{0};

  /// Daemon-wide instruments (null without telemetry).
  Counter* sessions_counter_ = nullptr;
  Counter* rejections_counter_ = nullptr;
  Counter* reports_counter_ = nullptr;
  Counter* checkpoints_counter_ = nullptr;
  Counter* failures_counter_ = nullptr;

  std::mutex mu_;
  std::condition_variable cv_;
  /// Live sessions by id; a session's id is in runnable_ exactly once
  /// (or held by the worker running its turn).
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_;
  std::deque<uint64_t> runnable_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

Result<std::unique_ptr<DiscoveryService>> DiscoveryService::Start(
    ServiceOptions options) {
  auto impl = std::make_unique<Impl>(std::move(options));
  AID_RETURN_IF_ERROR(impl->Start());
  return std::unique_ptr<DiscoveryService>(
      new DiscoveryService(std::move(impl)));
}

DiscoveryService::DiscoveryService(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
DiscoveryService::~DiscoveryService() = default;

const std::string& DiscoveryService::host() const { return impl_->host(); }
int DiscoveryService::port() const { return impl_->port(); }
Endpoint DiscoveryService::endpoint() const {
  return Endpoint{impl_->host(), impl_->port()};
}
int DiscoveryService::live_sessions() { return impl_->live_sessions(); }
uint64_t DiscoveryService::sessions_accepted() const {
  return impl_->sessions_accepted();
}
void DiscoveryService::Stop() { impl_->Stop(); }

#else  // !AID_NET_SUPPORTED

class DiscoveryService::Impl {};

Result<std::unique_ptr<DiscoveryService>> DiscoveryService::Start(
    ServiceOptions) {
  return Status::Unimplemented(
      "DiscoveryService: the multi-tenant daemon requires sockets, which "
      "this platform does not provide");
}

DiscoveryService::DiscoveryService(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
DiscoveryService::~DiscoveryService() = default;

namespace {
const std::string kNoHost;
}  // namespace

const std::string& DiscoveryService::host() const { return kNoHost; }
int DiscoveryService::port() const { return 0; }
Endpoint DiscoveryService::endpoint() const { return Endpoint{}; }
int DiscoveryService::live_sessions() { return 0; }
uint64_t DiscoveryService::sessions_accepted() const { return 0; }
void DiscoveryService::Stop() {}

#endif  // AID_NET_SUPPORTED

}  // namespace aid
