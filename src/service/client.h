// ServiceClient: the client side of the aid_service conversation
// (service/protocol.h). One client = one connection = one session:
//
//   auto client = ServiceClient::Connect(endpoint, 5000);
//   ServiceSubmission submission;
//   submission.label = "kafka-debug";
//   submission.spec = spec;               // SubjectSpec (borrowed subject)
//   submission.engine = EngineOptions::Aid();
//   auto accepted = (*client)->Submit(submission);
//   auto outcome = (*client)->Await(/*timeout_ms=*/60000);
//   if (outcome->checkpointed) { ... resume later with outcome->checkpoint
//   .state ... } else { use outcome->report ... }
//
// Submit performs admission synchronously (ACCEPTED or the service's
// structured ERROR as a Status); Await blocks for the terminal frame --
// REPORT, CHECKPOINT, or ERROR. Resuming is a fresh Connect + Submit with
// `resume_state` set to the checkpoint bytes and the same spec.

#ifndef AID_SERVICE_CLIENT_H_
#define AID_SERVICE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/engine.h"
#include "net/channel.h"
#include "net/socket.h"
#include "proc/subject_spec.h"
#include "service/protocol.h"

namespace aid {

/// Everything one SUBMIT carries. The spec's subject pointers are borrowed
/// and only need to live until Submit returns (the service rebuilds the
/// subject from the encoded bytes).
struct ServiceSubmission {
  std::string label;
  SubjectSpec spec;
  EngineOptions engine;
  /// See SubmitMsg::checkpoint_after_rounds.
  uint64_t checkpoint_after_rounds = 0;
  /// Checkpoint bytes from a prior session's CHECKPOINT; empty = fresh run.
  std::string resume_state;
};

/// The session's terminal answer: exactly one of report / checkpoint,
/// discriminated by `checkpointed`.
struct ServiceOutcome {
  bool checkpointed = false;
  DiscoveryReport report;
  CheckpointMsg checkpoint;
};

#if AID_NET_SUPPORTED

class ServiceClient {
 public:
  /// Dials the service and verifies its HELLO (magic "AIDS", version).
  static Result<std::unique_ptr<ServiceClient>> Connect(
      const Endpoint& endpoint, int timeout_ms = 5000);

  /// Sends SUBMIT and waits for the admission verdict. A service-side
  /// rejection (session cap, bad spec/options/state) is returned as the
  /// ERROR frame's carried Status. Call once per client.
  Result<AcceptedMsg> Submit(const ServiceSubmission& submission);

  /// Blocks for the terminal frame. timeout_ms <= 0 = forever. A service-
  /// side failure (quota exceeded, target error, shutdown) is the ERROR
  /// frame's carried Status; DeadlineExceeded means the session is still
  /// running (call again).
  Result<ServiceOutcome> Await(int timeout_ms = 0);

 private:
  explicit ServiceClient(std::unique_ptr<SocketChannel> channel)
      : channel_(std::move(channel)) {}

  std::unique_ptr<SocketChannel> channel_;
};

#else  // !AID_NET_SUPPORTED

class ServiceClient {
 public:
  static Result<std::unique_ptr<ServiceClient>> Connect(const Endpoint&,
                                                        int timeout_ms = 5000);
  Result<AcceptedMsg> Submit(const ServiceSubmission&);
  Result<ServiceOutcome> Await(int timeout_ms = 0);
};

#endif  // AID_NET_SUPPORTED

}  // namespace aid

#endif  // AID_SERVICE_CLIENT_H_
