// Engine-level tests of adaptive budgeting: SPRT determinism under the
// seeded flaky oracle, early stopping on persisting rounds, execution
// savings against the fixed-trial baseline, and graceful exhaustion of a
// global execution budget.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

std::unique_ptr<GroundTruthModel> MakeModel(int max_threads = 12,
                                            uint64_t seed = 7) {
  SyntheticAppOptions options;
  options.max_threads = max_threads;
  options.seed = seed;
  auto model = GenerateSyntheticApp(options);
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(*model);
}

DiscoveryReport RunBudgeted(const GroundTruthModel* model,
                            double manifest_probability, uint64_t flaky_seed,
                            int trials, BudgetOptions budget = {}) {
  budget.enabled = true;
  SessionBuilder builder;
  if (manifest_probability < 1.0) {
    builder.WithFlakyModel(model, manifest_probability, flaky_seed);
  } else {
    builder.WithModel(model);
  }
  auto session = builder.WithTrials(trials)
                     .WithAdaptiveBudget(budget)
                     .Build();
  EXPECT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  EXPECT_TRUE(report.ok()) << report.status();
  return report->discovery;
}

DiscoveryReport RunFixed(const GroundTruthModel* model,
                         double manifest_probability, uint64_t flaky_seed,
                         int trials) {
  SessionBuilder builder;
  if (manifest_probability < 1.0) {
    builder.WithFlakyModel(model, manifest_probability, flaky_seed);
  } else {
    builder.WithModel(model);
  }
  auto session = builder.WithTrials(trials).Build();
  EXPECT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  EXPECT_TRUE(report.ok()) << report.status();
  return report->discovery;
}

TEST(SprtBudgetTest, DeterministicUnderTheSeededFlakyOracle) {
  // Two budgeted runs over identically seeded flaky targets are
  // bit-identical: the SPRT consumes trials one at a time, and the flaky
  // coin flips are a pure function of (seed, global trial index).
  std::unique_ptr<GroundTruthModel> model = MakeModel(10, 3);
  const DiscoveryReport a =
      RunBudgeted(model.get(), 0.8, /*flaky_seed=*/11, /*trials=*/5);
  const DiscoveryReport b =
      RunBudgeted(model.get(), 0.8, /*flaky_seed=*/11, /*trials=*/5);
  EXPECT_TRUE(SameDiscoveryOutcome(a, b));
  EXPECT_EQ(a.budgeted_trials_allocated, b.budgeted_trials_allocated);
  EXPECT_EQ(a.budgeted_trials_saved, b.budgeted_trials_saved);
  EXPECT_EQ(a.budget_early_stops, b.budget_early_stops);
}

TEST(SprtBudgetTest, DeterministicTargetSavesExecutions) {
  std::unique_ptr<GroundTruthModel> model = MakeModel();
  const DiscoveryReport fixed = RunFixed(model.get(), 1.0, 1, /*trials=*/3);
  const DiscoveryReport budgeted =
      RunBudgeted(model.get(), 1.0, 1, /*trials=*/3);

  // Same verdicts, strictly cheaper: persisting rounds stop at the first
  // failing trial instead of running all three.
  EXPECT_EQ(budgeted.causal_path, fixed.causal_path);
  EXPECT_EQ(budgeted.spurious, fixed.spurious);
  EXPECT_LT(budgeted.executions, fixed.executions);
  EXPECT_GT(budgeted.budgeted_trials_saved, 0);
  EXPECT_GT(budgeted.budget_early_stops, 0u);
  EXPECT_FALSE(budgeted.budget_exhausted);
}

TEST(SprtBudgetTest, FlakyTargetFindsTheSameRootCauseCheaper) {
  std::unique_ptr<GroundTruthModel> model = MakeModel(10, 13);
  const DiscoveryReport fixed =
      RunFixed(model.get(), 0.8, /*flaky_seed=*/5, /*trials=*/5);
  const DiscoveryReport budgeted =
      RunBudgeted(model.get(), 0.8, /*flaky_seed=*/5, /*trials=*/5);

  ASSERT_TRUE(fixed.has_root_cause());
  ASSERT_TRUE(budgeted.has_root_cause());
  EXPECT_EQ(budgeted.root_cause(), fixed.root_cause());
  EXPECT_EQ(budgeted.root_cause(), model->root_cause());
  EXPECT_LE(budgeted.executions, fixed.executions);
}

TEST(SprtBudgetTest, ConfidenceIsPinnedWhenTheBudgetSuffices) {
  std::unique_ptr<GroundTruthModel> model = MakeModel(8, 5);
  const DiscoveryReport budgeted =
      RunBudgeted(model.get(), 1.0, 1, /*trials=*/3);
  ASSERT_FALSE(budgeted.confidence.empty());
  for (const PredicateConfidence& entry : budgeted.confidence) {
    EXPECT_TRUE(entry.causal_posterior == 0.0 ||
                entry.causal_posterior == 1.0)
        << "predicate " << entry.id << " at " << entry.causal_posterior;
  }
  EXPECT_GT(budgeted.budgeted_trials_allocated, 0u);
}

TEST(SprtBudgetTest, ExhaustedBudgetDegradesGracefully) {
  std::unique_ptr<GroundTruthModel> model = MakeModel();
  BudgetOptions budget;
  budget.max_executions = 4;  // far too small to finish discovery
  const DiscoveryReport report =
      RunBudgeted(model.get(), 1.0, 1, /*trials=*/3, budget);

  EXPECT_TRUE(report.budget_exhausted);
  EXPECT_LE(report.executions, 8u);  // one truncated round of slack at most
  // Some candidates stay undecided, carried as in-between confidence.
  bool undecided = false;
  for (const PredicateConfidence& entry : report.confidence) {
    if (entry.causal_posterior > 0.0 && entry.causal_posterior < 1.0) {
      undecided = true;
    }
  }
  EXPECT_TRUE(undecided);
}

TEST(SprtBudgetTest, RaisedCapAllowsMoreTrialsThanTheFixedCount) {
  // max_trials_per_round > trials_per_intervention lets a noisy candidate
  // earn more evidence than the fixed-trial engine would ever spend.
  std::unique_ptr<GroundTruthModel> model = MakeModel(8, 9);
  BudgetOptions budget;
  budget.max_trials_per_round = 50;
  budget.flakiness_prior_alpha = 1.0;  // weak prior: m starts at 0.5
  budget.flakiness_prior_beta = 1.0;
  const DiscoveryReport report =
      RunBudgeted(model.get(), 1.0, 1, /*trials=*/2, budget);
  ASSERT_TRUE(report.has_root_cause());
  EXPECT_EQ(report.root_cause(), model->root_cause());
}

TEST(SprtBudgetTest, BudgetWorksUnderBatchedLinearScan) {
  std::unique_ptr<GroundTruthModel> model = MakeModel(10, 3);
  BudgetOptions budget;
  budget.enabled = true;

  auto fixed_session = SessionBuilder()
                           .WithModel(model.get())
                           .WithEngineOptions(EngineOptions::Linear())
                           .WithBatchedDispatch()
                           .WithTrials(3)
                           .Build();
  ASSERT_TRUE(fixed_session.ok()) << fixed_session.status();
  auto fixed = fixed_session->Run();
  ASSERT_TRUE(fixed.ok()) << fixed.status();

  auto session = SessionBuilder()
                     .WithModel(model.get())
                     .WithEngineOptions(EngineOptions::Linear())
                     .WithBatchedDispatch()
                     .WithTrials(3)
                     .WithAdaptiveBudget(budget)
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto budgeted = session->Run();
  ASSERT_TRUE(budgeted.ok()) << budgeted.status();

  EXPECT_EQ(budgeted->discovery.causal_path, fixed->discovery.causal_path);
  EXPECT_EQ(budgeted->discovery.spurious, fixed->discovery.spurious);
  EXPECT_LE(budgeted->discovery.executions, fixed->discovery.executions);
  EXPECT_GT(budgeted->discovery.budgeted_trials_allocated, 0u);
}

}  // namespace
}  // namespace aid
