// Tests of budget/advice.h: prior seeding from SD suspiciousness and user
// suspects, plus BudgetOptions validation.

#include "budget/advice.h"

#include <gtest/gtest.h>

#include "budget/options.h"

namespace aid {
namespace {

TEST(AdvicePriorsTest, NoAdviceYieldsTheFlatPrior) {
  // With no SD scores the blend collapses to the base prior regardless of
  // sd_weight (an absent score contributes the base on both sides).
  AdvicePriors advice;
  const std::vector<PredicateId> candidates{1, 2, 3};
  const std::vector<double> priors = SeedPriors(candidates, 0.5, advice);
  ASSERT_EQ(priors.size(), candidates.size());
  for (double p : priors) EXPECT_DOUBLE_EQ(p, 0.5);
}

TEST(AdvicePriorsTest, SdScoresBlendAgainstTheBase) {
  AdvicePriors advice;
  advice.sd_weight = 0.5;
  advice.sd_scores = {{1, 1.0}, {2, 0.0}};
  const std::vector<double> priors = SeedPriors({1, 2, 3}, 0.5, advice);
  EXPECT_DOUBLE_EQ(priors[0], 0.75);  // 0.5*0.5 + 0.5*1.0
  EXPECT_DOUBLE_EQ(priors[1], 0.25);  // 0.5*0.5 + 0.5*0.0
  EXPECT_DOUBLE_EQ(priors[2], 0.5);   // unscored: base prior
}

TEST(AdvicePriorsTest, SdWeightZeroIgnoresScores) {
  AdvicePriors advice;
  advice.sd_weight = 0.0;
  advice.sd_scores = {{1, 1.0}};
  EXPECT_DOUBLE_EQ(SeedPriors({1}, 0.4, advice)[0], 0.4);
}

TEST(AdvicePriorsTest, SuspectsRaiseThePriorButNeverLowerIt) {
  AdvicePriors advice;
  advice.suspects = {1, 2};
  advice.suspect_prior = 0.9;
  advice.sd_weight = 0.5;
  advice.sd_scores = {{2, 1.0}, {3, 1.0}};
  // With base 0.9 the blend for id 2 is 0.95 > suspect_prior: kept.
  const std::vector<double> priors = SeedPriors({1, 2, 3}, 0.9, advice);
  EXPECT_DOUBLE_EQ(priors[0], 0.9);   // raised from the base to suspect_prior
  EXPECT_DOUBLE_EQ(priors[1], 0.95);  // blend already above suspect_prior
  EXPECT_DOUBLE_EQ(priors[2], 0.95);  // not a suspect: blend only
}

TEST(AdvicePriorsTest, PriorsNeverStartCertain) {
  AdvicePriors advice;
  advice.sd_weight = 1.0;
  advice.sd_scores = {{1, 1.0}, {2, 0.0}};
  const std::vector<double> priors = SeedPriors({1, 2}, 0.5, advice);
  EXPECT_LT(priors[0], 1.0);
  EXPECT_GT(priors[1], 0.0);
}

TEST(BudgetOptionsTest, DefaultsValidate) {
  EXPECT_TRUE(ValidateBudgetOptions(BudgetOptions{}).ok());
}

TEST(BudgetOptionsTest, RejectsOutOfRangeKnobs) {
  const auto expect_invalid = [](BudgetOptions options) {
    const Status status = ValidateBudgetOptions(options);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  };
  BudgetOptions o;
  o.error_tolerance = 0.0;
  expect_invalid(o);
  o = {};
  o.error_tolerance = 0.5;
  expect_invalid(o);
  o = {};
  o.causal_prior = 1.0;
  expect_invalid(o);
  o = {};
  o.max_trials_per_round = -1;
  expect_invalid(o);
  o = {};
  o.max_trials_per_round = kMaxBudgetTrialsPerRound + 1;
  expect_invalid(o);
  o = {};
  o.flakiness_prior_alpha = 0.0;
  expect_invalid(o);
  o = {};
  o.flakiness_prior_beta = -1.0;
  expect_invalid(o);
  o = {};
  o.topology_discount = 0.0;
  expect_invalid(o);
  o = {};
  o.topology_discount = 1.5;
  expect_invalid(o);
  o = {};
  o.cost_ewma_alpha = 0.0;
  expect_invalid(o);
  o = {};
  o.advice.suspect_prior = 1.0;
  expect_invalid(o);
  o = {};
  o.advice.sd_weight = 1.1;
  expect_invalid(o);
}

}  // namespace
}  // namespace aid
