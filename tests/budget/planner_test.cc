// Tests of budget/planner.h: the SPRT trial requirement, the expected
// information gain of a round, the gain-per-cost score, and the latency
// EWMA cost model.

#include "budget/planner.h"

#include <gtest/gtest.h>

#include "budget/belief.h"
#include "causal/acdag.h"

namespace aid {
namespace {

class BudgetPlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = catalog_.Intern(
        Predicate{.kind = PredKind::kSynthetic, .occurrence = 1});
    f_ = catalog_.Intern(Predicate{.kind = PredKind::kFailure});
    auto dag = AcDag::FromEdges(&catalog_, {a_, f_}, {{a_, f_}}, f_);
    ASSERT_TRUE(dag.ok()) << dag.status();
    dag_.emplace(std::move(*dag));
  }

  BeliefState MakeBelief(const BudgetOptions& options) {
    BeliefState belief(&*dag_, options);
    belief.SeedCandidates({a_});
    return belief;
  }

  PredicateCatalog catalog_;
  std::optional<AcDag> dag_;
  PredicateId a_ = kInvalidPredicate;
  PredicateId f_ = kInvalidPredicate;
};

TEST_F(BudgetPlannerTest, SprtRequirementAtTheDefaults) {
  // eps = 0.02, m = 0.8, p = 0.5:
  // k >= (ln 49 - ln 1) / -ln 0.2 = 3.892 / 1.609 = 2.42 -> 3 trials.
  BudgetOptions options;
  BeliefState belief = MakeBelief(options);
  BudgetPlanner planner(options, &belief);
  EXPECT_EQ(planner.PlanTrials({a_}, /*cap=*/10), 3);
  // The configured cap wins.
  EXPECT_EQ(planner.PlanTrials({a_}, /*cap=*/2), 2);
  EXPECT_EQ(planner.PlanTrials({a_}, /*cap=*/0), 1);
}

TEST_F(BudgetPlannerTest, LearnedDeterminismNeedsFewerTrials) {
  // The flakiness posterior, not prior optimism, is what shrinks rounds: a
  // target whose failures always manifest pushes m toward 1 and the SPRT
  // requirement toward a single trial.
  BudgetOptions options;
  BeliefState belief = MakeBelief(options);
  BudgetPlanner planner(options, &belief);
  const int before = planner.PlanTrials({a_}, /*cap=*/10);
  for (int i = 0; i < 10; ++i) {
    belief.ObservePersistingRound(/*passes_before_failure=*/0);
  }
  EXPECT_LT(planner.PlanTrials({a_}, /*cap=*/10), before);
  for (int i = 0; i < 200; ++i) {
    belief.ObservePersistingRound(/*passes_before_failure=*/0);
  }
  EXPECT_EQ(planner.PlanTrials({a_}, /*cap=*/10), 1);
}

TEST_F(BudgetPlannerTest, OptimisticPriorNeverLowersTheFlatRequirement) {
  // Soundness cap: prior confidence (or an inflated noisy-or group prior)
  // can never let a spurious group slip through with fewer passes than the
  // flat-odds SPRT bound demands.
  BudgetOptions options;
  options.causal_prior = 0.99;
  BeliefState belief = MakeBelief(options);
  BudgetPlanner planner(options, &belief);
  EXPECT_EQ(planner.PlanTrials({a_}, /*cap=*/10), 3);
}

TEST_F(BudgetPlannerTest, UnlikelyCausalGroupsDemandMoreEvidence) {
  BudgetOptions options;
  options.causal_prior = 0.05;  // a stop would be very surprising
  BeliefState belief = MakeBelief(options);
  BudgetPlanner planner(options, &belief);
  EXPECT_GT(planner.PlanTrials({a_}, /*cap=*/20), 3);
}

TEST_F(BudgetPlannerTest, FlakierTargetsDemandMoreTrials) {
  BudgetOptions noisy;
  noisy.flakiness_prior_alpha = 1.0;  // mean m = 0.5: passes are weak
  noisy.flakiness_prior_beta = 1.0;
  BeliefState noisy_belief = MakeBelief(noisy);
  BudgetPlanner noisy_planner(noisy, &noisy_belief);

  BudgetOptions crisp;  // default mean 0.8
  BeliefState crisp_belief = MakeBelief(crisp);
  BudgetPlanner crisp_planner(crisp, &crisp_belief);

  EXPECT_GT(noisy_planner.PlanTrials({a_}, /*cap=*/100),
            crisp_planner.PlanTrials({a_}, /*cap=*/100));
}

TEST_F(BudgetPlannerTest, InformationGainPositiveAndZeroWhenCertain) {
  BudgetOptions options;
  BeliefState belief = MakeBelief(options);
  BudgetPlanner planner(options, &belief);
  const double one = planner.InformationGain({a_}, 1);
  const double three = planner.InformationGain({a_}, 3);
  EXPECT_GT(one, 0.0);
  EXPECT_GT(three, one);  // more trials, more expected entropy reduction

  belief.MarkCausal(a_);
  EXPECT_DOUBLE_EQ(planner.InformationGain({a_}, 3), 0.0);
  EXPECT_DOUBLE_EQ(planner.InformationGain({a_}, 0), 0.0);
}

TEST_F(BudgetPlannerTest, ScoreDividesGainByPredictedCost) {
  BudgetOptions options;
  options.cost_ewma_alpha = 1.0;  // adopt samples immediately
  BeliefState belief = MakeBelief(options);
  BudgetPlanner planner(options, &belief);

  const double cheap = planner.Score({a_}, 1);
  EXPECT_GT(cheap, 0.0);
  planner.ObserveRoundCost(/*micros=*/1000, /*trials=*/1);
  EXPECT_DOUBLE_EQ(planner.trial_cost_micros(), 1000.0);
  // Same gain, 1000x the predicted cost.
  EXPECT_NEAR(planner.Score({a_}, 1), cheap / 1000.0, 1e-12);
}

TEST_F(BudgetPlannerTest, UnmeasuredSubstrateLeavesTheCostModelAlone) {
  BudgetOptions options;
  BeliefState belief = MakeBelief(options);
  BudgetPlanner planner(options, &belief);
  planner.ObserveRoundCost(/*micros=*/0, /*trials=*/5);
  EXPECT_DOUBLE_EQ(planner.trial_cost_micros(), 0.0);
  planner.ObserveRoundCost(/*micros=*/100, /*trials=*/0);
  EXPECT_DOUBLE_EQ(planner.trial_cost_micros(), 0.0);
}

TEST_F(BudgetPlannerTest, CostEwmaBlendsSamples) {
  BudgetOptions options;
  options.cost_ewma_alpha = 0.25;
  BeliefState belief = MakeBelief(options);
  BudgetPlanner planner(options, &belief);
  planner.ObserveRoundCost(/*micros=*/400, /*trials=*/4);  // 100 us/trial
  const double first = planner.trial_cost_micros();
  EXPECT_GT(first, 0.0);
  planner.ObserveRoundCost(/*micros=*/4000, /*trials=*/4);  // 1000 us/trial
  EXPECT_GT(planner.trial_cost_micros(), first);
  EXPECT_LT(planner.trial_cost_micros(), 1000.0);  // EWMA, not last-sample
}

}  // namespace
}  // namespace aid
