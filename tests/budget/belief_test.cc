// Tests of budget/belief.h: posterior math for stopped rounds, flakiness
// learning from persisting rounds, verdict pinning, and the AC-DAG
// topology propagation of MarkCausal.

#include "budget/belief.h"

#include <gtest/gtest.h>

#include "causal/acdag.h"

namespace aid {
namespace {

class BeliefStateTest : public ::testing::Test {
 protected:
  PredicateId Pred(int index) {
    return catalog_.Intern(
        Predicate{.kind = PredKind::kSynthetic, .occurrence = index});
  }
  PredicateId Failure() {
    return catalog_.Intern(Predicate{.kind = PredKind::kFailure});
  }

  PredicateCatalog catalog_;
};

TEST_F(BeliefStateTest, SeedsFlatPriorAndUnknownIsZero) {
  const PredicateId a = Pred(1);
  const PredicateId f = Failure();
  auto dag = AcDag::FromEdges(&catalog_, {a, f}, {{a, f}}, f);
  ASSERT_TRUE(dag.ok()) << dag.status();

  BudgetOptions options;
  BeliefState belief(&*dag, options);
  belief.SeedCandidates({a});
  EXPECT_DOUBLE_EQ(belief.posterior(a), 0.5);
  EXPECT_DOUBLE_EQ(belief.posterior(999), 0.0);
}

TEST_F(BeliefStateTest, GroupProbabilityIsNoisyOr) {
  const PredicateId a = Pred(1);
  const PredicateId b = Pred(2);
  const PredicateId f = Failure();
  auto dag = AcDag::FromEdges(&catalog_, {a, b, f}, {{a, b}, {b, f}}, f);
  ASSERT_TRUE(dag.ok()) << dag.status();

  BeliefState belief(&*dag, BudgetOptions{});
  belief.SeedCandidates({a, b});
  // 1 - (1 - 0.5)^2 = 0.75.
  EXPECT_DOUBLE_EQ(belief.GroupCausalProbability({a, b}), 0.75);
  EXPECT_DOUBLE_EQ(belief.GroupCausalProbability({}), 0.0);
}

TEST_F(BeliefStateTest, FlakinessStartsAtThePriorMeanAndLearns) {
  const PredicateId a = Pred(1);
  const PredicateId f = Failure();
  auto dag = AcDag::FromEdges(&catalog_, {a, f}, {{a, f}}, f);
  ASSERT_TRUE(dag.ok()) << dag.status();

  BudgetOptions options;  // Beta(4, 1): mean 0.8
  BeliefState belief(&*dag, options);
  belief.SeedCandidates({a});
  EXPECT_DOUBLE_EQ(belief.flakiness(), 0.8);

  // An immediate failure: one manifestation, no passes -> mean 5/6.
  belief.ObservePersistingRound(/*passes_before_failure=*/0);
  EXPECT_DOUBLE_EQ(belief.flakiness(), 5.0 / 6.0);

  // Three passes then a failure: alpha 6, beta 4 -> mean 0.6.
  belief.ObservePersistingRound(/*passes_before_failure=*/3);
  EXPECT_DOUBLE_EQ(belief.flakiness(), 0.6);
}

TEST_F(BeliefStateTest, StoppedRoundAppliesTheBayesFactor) {
  const PredicateId a = Pred(1);
  const PredicateId f = Failure();
  auto dag = AcDag::FromEdges(&catalog_, {a, f}, {{a, f}}, f);
  ASSERT_TRUE(dag.ok()) << dag.status();

  BeliefState belief(&*dag, BudgetOptions{});  // m = 0.8, prior 0.5
  belief.SeedCandidates({a});
  belief.ObserveStoppedRound({a}, /*passes=*/1);
  // p' = 0.5 / (0.5 + 0.5 * 0.2) = 5/6.
  EXPECT_NEAR(belief.posterior(a), 5.0 / 6.0, 1e-12);

  // More passes push harder, but never to certainty.
  belief.ObserveStoppedRound({a}, /*passes=*/10);
  EXPECT_GT(belief.posterior(a), 5.0 / 6.0);
  EXPECT_LT(belief.posterior(a), 1.0);
}

TEST_F(BeliefStateTest, ZeroPassRoundIsANoOp) {
  const PredicateId a = Pred(1);
  const PredicateId f = Failure();
  auto dag = AcDag::FromEdges(&catalog_, {a, f}, {{a, f}}, f);
  ASSERT_TRUE(dag.ok()) << dag.status();

  BeliefState belief(&*dag, BudgetOptions{});
  belief.SeedCandidates({a});
  belief.ObserveStoppedRound({a}, /*passes=*/0);
  EXPECT_DOUBLE_EQ(belief.posterior(a), 0.5);
}

TEST_F(BeliefStateTest, MarkCausalDiscountsIncomparableCandidatesOnly) {
  // a -> b -> f and c -> f: c is incomparable with both a and b.
  const PredicateId a = Pred(1);
  const PredicateId b = Pred(2);
  const PredicateId c = Pred(3);
  const PredicateId f = Failure();
  auto dag = AcDag::FromEdges(&catalog_, {a, b, c, f},
                              {{a, b}, {b, f}, {c, f}}, f);
  ASSERT_TRUE(dag.ok()) << dag.status();

  BudgetOptions options;
  options.topology_discount = 0.5;
  BeliefState belief(&*dag, options);
  belief.SeedCandidates({a, b, c});
  belief.MarkCausal(a);
  EXPECT_DOUBLE_EQ(belief.posterior(a), 1.0);
  EXPECT_DOUBLE_EQ(belief.posterior(b), 0.5);   // comparable: untouched
  EXPECT_DOUBLE_EQ(belief.posterior(c), 0.25);  // incomparable: discounted
}

TEST_F(BeliefStateTest, PinnedVerdictsIgnoreLaterEvidence) {
  const PredicateId a = Pred(1);
  const PredicateId b = Pred(2);
  const PredicateId f = Failure();
  auto dag = AcDag::FromEdges(&catalog_, {a, b, f}, {{a, b}, {b, f}}, f);
  ASSERT_TRUE(dag.ok()) << dag.status();

  BeliefState belief(&*dag, BudgetOptions{});
  belief.SeedCandidates({a, b});
  belief.MarkSpurious(a);
  belief.ObserveStoppedRound({a, b}, /*passes=*/3);
  EXPECT_DOUBLE_EQ(belief.posterior(a), 0.0);
  EXPECT_GT(belief.posterior(b), 0.5);
}

TEST_F(BeliefStateTest, SnapshotIsAscendingById) {
  const PredicateId a = Pred(1);
  const PredicateId b = Pred(2);
  const PredicateId c = Pred(3);
  const PredicateId f = Failure();
  auto dag = AcDag::FromEdges(&catalog_, {a, b, c, f},
                              {{a, b}, {b, c}, {c, f}}, f);
  ASSERT_TRUE(dag.ok()) << dag.status();

  BeliefState belief(&*dag, BudgetOptions{});
  belief.SeedCandidates({c, a, b});
  belief.MarkCausal(b);
  const std::vector<PredicateConfidence> snapshot = belief.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_LT(snapshot[0].id, snapshot[1].id);
  EXPECT_LT(snapshot[1].id, snapshot[2].id);
  for (const PredicateConfidence& entry : snapshot) {
    if (entry.id == b) EXPECT_DOUBLE_EQ(entry.causal_posterior, 1.0);
  }
}

TEST_F(BeliefStateTest, BinaryEntropyEndpoints) {
  EXPECT_DOUBLE_EQ(BeliefState::BinaryEntropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(BeliefState::BinaryEntropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(BeliefState::BinaryEntropy(0.5), 1.0);
  EXPECT_GT(BeliefState::BinaryEntropy(0.5),
            BeliefState::BinaryEntropy(0.9));
}

}  // namespace
}  // namespace aid
