// Parity contracts of adaptive budgeting:
//   - budgeting DISABLED leaves every discovery report bit-identical to a
//     build that never heard of src/budget/ (the report's new fields stay
//     zero and SameDiscoveryOutcome ignores them);
//   - budgeting ENABLED reaches the same root cause as the fixed-trial
//     engine with no more executions, across all six case studies.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

const char* kCaseStudies[] = {"npgsql",  "kafka",        "cosmosdb",
                              "network", "buildandtest", "healthtelemetry"};

std::unique_ptr<GroundTruthModel> MakeModel(uint64_t seed = 7) {
  SyntheticAppOptions options;
  options.max_threads = 12;
  options.seed = seed;
  auto model = GenerateSyntheticApp(options);
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(*model);
}

void ExpectBitIdentical(const DiscoveryReport& a, const DiscoveryReport& b) {
  EXPECT_TRUE(SameDiscoveryOutcome(a, b));
  EXPECT_EQ(a.causal_path, b.causal_path);
  EXPECT_EQ(a.spurious, b.spurious);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.speculative_executions, b.speculative_executions);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].intervened, b.history[i].intervened);
    EXPECT_EQ(a.history[i].failure_stopped, b.history[i].failure_stopped);
    EXPECT_EQ(a.history[i].phase, b.history[i].phase);
  }
}

TEST(BudgetParityTest, DisabledBudgetIsBitIdenticalOnModels) {
  std::unique_ptr<GroundTruthModel> model = MakeModel();

  auto plain = SessionBuilder().WithModel(model.get()).WithTrials(3).Build();
  ASSERT_TRUE(plain.ok()) << plain.status();
  auto plain_report = plain->Run();
  ASSERT_TRUE(plain_report.ok()) << plain_report.status();

  BudgetOptions disabled;  // enabled defaults to false
  auto gated = SessionBuilder()
                   .WithModel(model.get())
                   .WithTrials(3)
                   .WithAdaptiveBudget(disabled)
                   .Build();
  ASSERT_TRUE(gated.ok()) << gated.status();
  auto gated_report = gated->Run();
  ASSERT_TRUE(gated_report.ok()) << gated_report.status();

  ExpectBitIdentical(gated_report->discovery, plain_report->discovery);
  // The budget-only report fields stay at their zero defaults.
  EXPECT_EQ(gated_report->discovery.budgeted_trials_allocated, 0u);
  EXPECT_EQ(gated_report->discovery.budgeted_trials_saved, 0);
  EXPECT_EQ(gated_report->discovery.budget_early_stops, 0u);
  EXPECT_FALSE(gated_report->discovery.budget_exhausted);
  EXPECT_TRUE(gated_report->discovery.confidence.empty());
}

TEST(BudgetParityTest, DisabledBudgetIsBitIdenticalOnFlakyModels) {
  std::unique_ptr<GroundTruthModel> model = MakeModel(13);

  auto plain = SessionBuilder()
                   .WithFlakyModel(model.get(), 0.8, /*seed=*/5)
                   .WithTrials(5)
                   .Build();
  ASSERT_TRUE(plain.ok()) << plain.status();
  auto plain_report = plain->Run();
  ASSERT_TRUE(plain_report.ok()) << plain_report.status();

  auto gated = SessionBuilder()
                   .WithFlakyModel(model.get(), 0.8, /*seed=*/5)
                   .WithTrials(5)
                   .WithAdaptiveBudget(BudgetOptions{})
                   .Build();
  ASSERT_TRUE(gated.ok()) << gated.status();
  auto gated_report = gated->Run();
  ASSERT_TRUE(gated_report.ok()) << gated_report.status();

  ExpectBitIdentical(gated_report->discovery, plain_report->discovery);
}

class BudgetCaseStudyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BudgetCaseStudyTest, SameRootCauseNoMoreExecutions) {
  const std::string name = GetParam();

  auto fixed = SessionBuilder()
                   .WithCaseStudy(name)
                   .WithTrials(3)
                   .WithDescriptions(true)
                   .Build();
  ASSERT_TRUE(fixed.ok()) << fixed.status();
  auto fixed_report = fixed->Run();
  ASSERT_TRUE(fixed_report.ok()) << fixed_report.status();

  auto budgeted = SessionBuilder()
                      .WithCaseStudy(name)
                      .WithTrials(3)
                      .WithAdaptiveBudget()
                      .WithDescriptions(true)
                      .Build();
  ASSERT_TRUE(budgeted.ok()) << budgeted.status();
  auto budgeted_report = budgeted->Run();
  ASSERT_TRUE(budgeted_report.ok()) << budgeted_report.status();

  // Verdicts are identical; only the trial spend shrinks.
  EXPECT_EQ(budgeted_report->discovery.causal_path,
            fixed_report->discovery.causal_path);
  EXPECT_EQ(budgeted_report->discovery.spurious,
            fixed_report->discovery.spurious);
  EXPECT_EQ(budgeted_report->root_cause, fixed_report->root_cause);
  EXPECT_LE(budgeted_report->discovery.executions,
            fixed_report->discovery.executions);
  EXPECT_GE(budgeted_report->discovery.budgeted_trials_saved, 0);
  EXPECT_FALSE(budgeted_report->discovery.budget_exhausted);
}

INSTANTIATE_TEST_SUITE_P(AllCaseStudies, BudgetCaseStudyTest,
                         ::testing::ValuesIn(kCaseStudies));

TEST(BudgetParityTest, SdAdviceIsWiredFromTheVmBackend) {
  // The "case" backend runs statistical debugging, so the session should
  // hand its suspiciousness ranking to the budgeter automatically.
  auto session = SessionBuilder()
                     .WithCaseStudy("npgsql")
                     .WithTrials(3)
                     .WithAdaptiveBudget()
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_FALSE(session->target().sd_suspiciousness().empty());
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->has_root_cause());
}

}  // namespace
}  // namespace aid
