#include "grouptest/group_testing.h"

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aid {
namespace {

TEST(GroupTestingTest, NoDefectivesNeedsOneTest) {
  SetOracle oracle({});
  auto result = AdaptiveGroupTest(16, oracle);
  EXPECT_TRUE(result.defectives.empty());
  EXPECT_EQ(result.tests, 1);
}

TEST(GroupTestingTest, SingleDefectiveBinarySearch) {
  SetOracle oracle({11});
  auto result = AdaptiveGroupTest(16, oracle);
  EXPECT_EQ(result.defectives, (std::vector<int>{11}));
  // 1 whole-pool test + at most ceil(log2 16) splits (each costing <= 2).
  EXPECT_LE(result.tests, 1 + 2 * 4);
  EXPECT_EQ(result.tests, oracle.tests());
}

TEST(GroupTestingTest, AllDefective) {
  SetOracle oracle({0, 1, 2, 3});
  auto result = AdaptiveGroupTest(4, oracle);
  EXPECT_EQ(result.defectives, (std::vector<int>{0, 1, 2, 3}));
}

TEST(GroupTestingTest, LinearScanFindsAll) {
  SetOracle oracle({2, 5});
  auto result = LinearScan(8, oracle);
  EXPECT_EQ(result.defectives, (std::vector<int>{2, 5}));
  EXPECT_EQ(result.tests, 8);
}

TEST(GroupTestingTest, EmptyPool) {
  SetOracle oracle({});
  EXPECT_TRUE(AdaptiveGroupTest(0, oracle).defectives.empty());
  EXPECT_EQ(AdaptiveGroupTest(0, oracle).tests, 0);
}

TEST(GroupTestingTest, AllocatorOfOneMatchesSingleTrialOverload) {
  SetOracle fixed({3, 9});
  auto baseline = AdaptiveGroupTest(16, fixed);
  SetOracle repeated({3, 9});
  auto adaptive = AdaptiveGroupTest(
      16, repeated, [](const std::vector<int>&) { return 1; });
  EXPECT_EQ(adaptive.defectives, baseline.defectives);
  EXPECT_EQ(adaptive.tests, baseline.tests);
}

TEST(GroupTestingTest, AllocatorRepeatsNegativeGroups) {
  // An always-3 allocator repeats each *negative* answer three times; a
  // positive answer short-circuits on the first repetition (the decision
  // asymmetry: one positive is decisive).
  SetOracle oracle({});
  auto result = AdaptiveGroupTest(
      8, oracle, [](const std::vector<int>&) { return 3; });
  EXPECT_TRUE(result.defectives.empty());
  EXPECT_EQ(result.tests, 3);  // one negative whole-pool group, 3 trials
  EXPECT_EQ(oracle.tests(), result.tests);

  SetOracle positive({0, 1, 2, 3});
  auto all = AdaptiveGroupTest(
      4, positive, [](const std::vector<int>&) { return 3; });
  EXPECT_EQ(all.defectives, (std::vector<int>{0, 1, 2, 3}));
  // Every group tested is positive, so every answer costs exactly 1 trial:
  // same count as the single-trial overload.
  SetOracle single({0, 1, 2, 3});
  EXPECT_EQ(all.tests, AdaptiveGroupTest(4, single).tests);
}

TEST(GroupTestingTest, AllocatorClampedToAtLeastOneTrial) {
  SetOracle oracle({5});
  auto result = AdaptiveGroupTest(
      8, oracle, [](const std::vector<int>&) { return 0; });
  EXPECT_EQ(result.defectives, (std::vector<int>{5}));
}

TEST(GroupTestingTest, AllocatorSeesTheGroupUnderTest) {
  // Size-aware allocation: noisy verdicts on big groups get more trials.
  SetOracle oracle({});
  auto result = AdaptiveGroupTest(16, oracle, [](const std::vector<int>& g) {
    return g.size() > 8 ? 2 : 1;
  });
  EXPECT_TRUE(result.defectives.empty());
  EXPECT_EQ(result.tests, 2);  // whole pool (16 items) retried once
}

TEST(GroupTestingTest, BoundsHelpers) {
  EXPECT_EQ(AdaptiveGroupTestUpperBound(16, 2), 8);
  EXPECT_EQ(AdaptiveGroupTestUpperBound(0, 5), 0);
  EXPECT_GT(GroupTestLowerBound(16, 2), 0.0);
  EXPECT_LE(GroupTestLowerBound(16, 2),
            static_cast<double>(AdaptiveGroupTestUpperBound(16, 2)));
}

// Property sweep over (N, D): correctness and the O(D log N) test bound.
class GroupTestPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GroupTestPropertyTest, FindsExactDefectiveSetWithinBound) {
  const auto [n, d_raw, seed] = GetParam();
  const int d = std::min(n, d_raw);
  Rng rng(static_cast<uint64_t>(seed));
  std::vector<int> all(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
  rng.Shuffle(all);
  std::vector<int> defectives(all.begin(), all.begin() + d);
  std::sort(defectives.begin(), defectives.end());

  SetOracle oracle(defectives);
  auto result = AdaptiveGroupTest(n, oracle);
  EXPECT_EQ(result.defectives, defectives);
  // Generous constant over the D ceil(log N) bound (split overhead).
  const int bound =
      1 + 2 * d * (CeilLog2(static_cast<uint64_t>(n)) + 1);
  EXPECT_LE(result.tests, bound) << "n=" << n << " d=" << d;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupTestPropertyTest,
    ::testing::Combine(::testing::Values(4, 16, 64, 200),
                       ::testing::Values(1, 2, 5),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace aid
