// End-to-end integration tests: the full pipeline (VM observation ->
// extraction -> SD -> AC-DAG -> interventions) on complete programs,
// engine-variant agreement, determinism, and report rendering.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/report.h"
#include "core/vm_target.h"
#include "inject/compiler.h"
#include "runtime/vm.h"
#include "sd/statistical_debugger.h"

namespace aid {
namespace {

/// The quickstart program: a torn config update observed by a validator.
Result<Program> TornUpdateProgram() {
  ProgramBuilder b;
  b.Global("version", 1);
  b.Global("checksum", 1);
  {
    auto m = b.Method("Main");
    m.Spawn(0, "Writer").Spawn(1, "Reader").Join(0).Join(1).Return();
  }
  {
    auto m = b.Method("Writer");
    m.Random(0, 2);
    const size_t late = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(10);
    const size_t go = m.JumpPlaceholder();
    m.PatchTarget(late);
    m.Delay(70);
    m.PatchTarget(go);
    m.CallVoid("PublishConfig").Return();
  }
  {
    auto m = b.Method("PublishConfig");
    m.LoadConst(1, 2)
        .StoreGlobal("version", 1)
        .Delay(30)
        .StoreGlobal("checksum", 1)
        .Return();
  }
  {
    auto m = b.Method("Reader");
    m.Random(0, 2);
    const size_t late = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(30);
    const size_t go = m.JumpPlaceholder();
    m.PatchTarget(late);
    m.Delay(85);
    m.PatchTarget(go);
    m.CallVoid("ValidateConfig").Return();
  }
  {
    auto m = b.Method("ValidateConfig");
    m.SideEffectFree();
    m.LoadGlobal(0, "version")
        .LoadGlobal(1, "checksum")
        .CmpEq(2, 0, 1)
        .ThrowIfZero(2, "ChecksumMismatch")
        .Return(2);
  }
  return b.Build("Main");
}

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto program = TornUpdateProgram();
    ASSERT_TRUE(program.ok());
    program_ = std::make_unique<Program>(std::move(*program));
    VmTargetOptions options;
    options.min_successes = 40;
    options.min_failures = 40;
    auto target = VmTarget::Create(program_.get(), options);
    ASSERT_TRUE(target.ok());
    target_ = std::move(*target);
  }

  std::unique_ptr<Program> program_;
  std::unique_ptr<VmTarget> target_;
};

TEST_F(EndToEndTest, FullPipelineFindsTheRace) {
  auto dag = target_->BuildAcDag();
  ASSERT_TRUE(dag.ok());
  EngineOptions options = EngineOptions::Aid();
  options.trials_per_intervention = 3;
  CausalPathDiscovery discovery(&*dag, target_.get(), options);
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());

  ASSERT_NE(report->root_cause(), kInvalidPredicate);
  const std::string root = target_->extractor().catalog().Describe(
      report->root_cause(), &program_->method_names(),
      &program_->object_names());
  EXPECT_NE(root.find("PublishConfig"), std::string::npos) << root;
  EXPECT_NE(root.find("ValidateConfig"), std::string::npos) << root;
  EXPECT_TRUE(report->path_is_chain);

  const std::string rendered = RenderReport(
      *report, *dag,
      {.methods = &program_->method_names(),
       .objects = &program_->object_names()});
  EXPECT_NE(rendered.find("root cause"), std::string::npos);
}

TEST_F(EndToEndTest, AllEngineVariantsAgreeOnTheRootCause) {
  auto dag = target_->BuildAcDag();
  ASSERT_TRUE(dag.ok());
  const EngineOptions variants[4] = {
      EngineOptions::Aid(), EngineOptions::AidNoPredicatePruning(),
      EngineOptions::AidNoPruning(), EngineOptions::Tagt()};
  PredicateId roots[4];
  for (int v = 0; v < 4; ++v) {
    EngineOptions options = variants[v];
    options.trials_per_intervention = 3;
    CausalPathDiscovery discovery(&*dag, target_.get(), options);
    auto report = discovery.Run();
    ASSERT_TRUE(report.ok()) << "variant " << v;
    roots[v] = report->root_cause();
  }
  EXPECT_EQ(roots[0], roots[1]);
  EXPECT_EQ(roots[1], roots[2]);
  EXPECT_EQ(roots[2], roots[3]);
}

TEST_F(EndToEndTest, LinearScanAlsoWorksOnVmTargets) {
  auto dag = target_->BuildAcDag();
  ASSERT_TRUE(dag.ok());
  EngineOptions options = EngineOptions::Linear();
  options.trials_per_intervention = 3;
  CausalPathDiscovery discovery(&*dag, target_.get(), options);
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->root_cause(), kInvalidPredicate);
  for (const auto& round : report->history) {
    EXPECT_EQ(round.intervened.size(), 1u);
  }
}

TEST(EndToEndDeterminismTest, IdenticalSetupsProduceIdenticalReports) {
  for (int run = 0; run < 2; ++run) {
    auto program = TornUpdateProgram();
    ASSERT_TRUE(program.ok());
    VmTargetOptions options;
    options.min_successes = 30;
    options.min_failures = 30;
    auto target = VmTarget::Create(&*program, options);
    ASSERT_TRUE(target.ok());
    auto dag = (*target)->BuildAcDag();
    ASSERT_TRUE(dag.ok());
    EngineOptions engine = EngineOptions::Aid();
    engine.trials_per_intervention = 3;
    CausalPathDiscovery discovery(&*dag, target->get(), engine);
    auto report = discovery.Run();
    ASSERT_TRUE(report.ok());

    static std::vector<PredicateId> first_path;
    static int first_rounds = 0;
    if (run == 0) {
      first_path = report->causal_path;
      first_rounds = report->rounds;
    } else {
      EXPECT_EQ(report->causal_path, first_path);
      EXPECT_EQ(report->rounds, first_rounds);
    }
  }
}

TEST(EndToEndRepairSoundnessTest, RootCauseInterventionPreservesSuccessfulRuns) {
  // An intervention is a *repair*: applying the root-cause fix to seeds
  // that already succeeded must not introduce a failure.
  auto program = TornUpdateProgram();
  ASSERT_TRUE(program.ok());
  VmTargetOptions options;
  options.min_successes = 25;
  options.min_failures = 25;
  auto target = VmTarget::Create(&*program, options);
  ASSERT_TRUE(target.ok());
  auto dag = (*target)->BuildAcDag();
  ASSERT_TRUE(dag.ok());
  EngineOptions engine = EngineOptions::Aid();
  engine.trials_per_intervention = 3;
  CausalPathDiscovery discovery(&*dag, target->get(), engine);
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_NE(report->root_cause(), kInvalidPredicate);

  // Re-run fresh seeds (a mix of would-succeed and would-fail) with the
  // root-cause intervention compiled in: none may fail.
  InterventionCompiler compiler(&*program,
                                &(*target)->extractor().catalog(),
                                &(*target)->extractor().baselines());
  auto plan = compiler.CompilePlan({report->root_cause()});
  ASSERT_TRUE(plan.ok());
  Vm vm(&*program);
  for (uint64_t seed = 500; seed < 560; ++seed) {
    VmOptions vm_options;
    vm_options.seed = seed;
    auto trace = vm.Run(vm_options, &*plan);
    ASSERT_TRUE(trace.ok());
    EXPECT_FALSE(trace->failed()) << "seed " << seed;
  }
}

TEST(EndToEndCatalogTest, InterventionsNeverGrowTheCatalog) {
  auto program = TornUpdateProgram();
  ASSERT_TRUE(program.ok());
  VmTargetOptions options;
  options.min_successes = 20;
  options.min_failures = 20;
  auto target = VmTarget::Create(&*program, options);
  ASSERT_TRUE(target.ok());
  const size_t before = (*target)->extractor().catalog().size();
  auto dag = (*target)->BuildAcDag();
  ASSERT_TRUE(dag.ok());
  CausalPathDiscovery discovery(&*dag, target->get(), EngineOptions::Aid());
  ASSERT_TRUE(discovery.Run().ok());
  EXPECT_EQ((*target)->extractor().catalog().size(), before);
}

}  // namespace
}  // namespace aid
