// Tests of the predicate -> fault-injection mapping (Figure 2, column 3)
// and the safety rules of Section 3.3.

#include "inject/compiler.h"

#include <gtest/gtest.h>

namespace aid {
namespace {

class CompilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProgramBuilder b;
    b.Global("g", 0);
    b.Method("Pure").SideEffectFree().LoadConst(0, 1).Return(0);
    b.Method("Impure").LoadConst(0, 1).StoreGlobal("g", 0).Return(0);
    b.Method("Main").CallVoid("Pure").CallVoid("Impure").Return();
    auto program = b.Build("Main");
    ASSERT_TRUE(program.ok());
    program_ = std::make_unique<Program>(std::move(*program));
    pure_ = program_->method_names().Find("Pure");
    impure_ = program_->method_names().Find("Impure");

    MethodBaseline baseline;
    baseline.min_duration = 10;
    baseline.max_duration = 20;
    baseline.consistent_return = 1;
    baseline.executions = 5;
    baselines_[pure_] = baseline;
    baselines_[impure_] = baseline;
  }

  PredicateId Intern(Predicate p) { return catalog_.Intern(p); }

  InterventionCompiler MakeCompiler() {
    return InterventionCompiler(program_.get(), &catalog_, &baselines_);
  }

  std::unique_ptr<Program> program_;
  PredicateCatalog catalog_;
  std::unordered_map<SymbolId, MethodBaseline> baselines_;
  SymbolId pure_ = kInvalidSymbol;
  SymbolId impure_ = kInvalidSymbol;
};

TEST_F(CompilerTest, DataRaceCompilesToSerialization) {
  const PredicateId id = Intern(Predicate{
      .kind = PredKind::kDataRace, .m1 = pure_, .m2 = impure_, .obj = 0});
  auto compiler = MakeCompiler();
  EXPECT_TRUE(compiler.IsSafelyIntervenable(id));  // locking is always safe
  auto actions = compiler.Compile(id);
  ASSERT_TRUE(actions.ok());
  ASSERT_EQ(actions->size(), 1u);
  EXPECT_EQ((*actions)[0].kind, VmActionKind::kSerializeMethods);
  EXPECT_EQ((*actions)[0].mutex, InterventionMutexId(id));
}

TEST_F(CompilerTest, AtomicityViolationCompilesToSerialization) {
  const PredicateId id = Intern(Predicate{.kind = PredKind::kAtomicityViolation,
                                          .m1 = impure_,
                                          .m2 = impure_,
                                          .obj = 0});
  auto compiler = MakeCompiler();
  EXPECT_TRUE(compiler.IsSafelyIntervenable(id));
  auto actions = compiler.Compile(id);
  ASSERT_TRUE(actions.ok());
  EXPECT_EQ((*actions)[0].kind, VmActionKind::kSerializeMethods);
}

TEST_F(CompilerTest, MethodFailsRequiresSideEffectFreedom) {
  const PredicateId safe =
      Intern(Predicate{.kind = PredKind::kMethodFails, .m1 = pure_});
  const PredicateId unsafe =
      Intern(Predicate{.kind = PredKind::kMethodFails, .m1 = impure_});
  auto compiler = MakeCompiler();
  EXPECT_TRUE(compiler.IsSafelyIntervenable(safe));
  EXPECT_FALSE(compiler.IsSafelyIntervenable(unsafe));
  EXPECT_FALSE(compiler.Compile(unsafe).ok());

  auto actions = compiler.Compile(safe);
  ASSERT_TRUE(actions.ok());
  EXPECT_EQ((*actions)[0].kind, VmActionKind::kCatchExceptions);
  EXPECT_EQ((*actions)[0].value, 1);  // the consistent successful value
}

TEST_F(CompilerTest, TooSlowCompilesToPrematureReturnWithBaselineTiming) {
  const PredicateId id =
      Intern(Predicate{.kind = PredKind::kTooSlow, .m1 = pure_});
  auto compiler = MakeCompiler();
  auto actions = compiler.Compile(id);
  ASSERT_TRUE(actions.ok());
  EXPECT_EQ((*actions)[0].kind, VmActionKind::kPrematureReturn);
  EXPECT_EQ((*actions)[0].ticks, 15);  // (10 + 20) / 2
  EXPECT_EQ((*actions)[0].value, 1);
}

TEST_F(CompilerTest, TooSlowOnImpureMethodIsUnsafe) {
  const PredicateId id =
      Intern(Predicate{.kind = PredKind::kTooSlow, .m1 = impure_});
  EXPECT_FALSE(MakeCompiler().IsSafelyIntervenable(id));
}

TEST_F(CompilerTest, TooFastCompilesToDelay) {
  const PredicateId id =
      Intern(Predicate{.kind = PredKind::kTooFast, .m1 = impure_});
  auto compiler = MakeCompiler();
  EXPECT_TRUE(compiler.IsSafelyIntervenable(id));  // delays are always safe
  auto actions = compiler.Compile(id);
  ASSERT_TRUE(actions.ok());
  EXPECT_EQ((*actions)[0].kind, VmActionKind::kDelayBeforeReturn);
  EXPECT_EQ((*actions)[0].ticks, 11);  // min_duration + 1
}

TEST_F(CompilerTest, WrongReturnForcesExpectedValue) {
  const PredicateId id = Intern(Predicate{
      .kind = PredKind::kWrongReturn, .m1 = pure_, .expected = 42});
  auto actions = MakeCompiler().Compile(id);
  ASSERT_TRUE(actions.ok());
  EXPECT_EQ((*actions)[0].kind, VmActionKind::kForceReturnValue);
  EXPECT_EQ((*actions)[0].value, 42);
}

TEST_F(CompilerTest, OrderCompilesToEnforceOrder) {
  const PredicateId id = Intern(
      Predicate{.kind = PredKind::kOrder, .m1 = pure_, .m2 = impure_});
  auto actions = MakeCompiler().Compile(id);
  ASSERT_TRUE(actions.ok());
  EXPECT_EQ((*actions)[0].kind, VmActionKind::kEnforceOrder);
  EXPECT_EQ((*actions)[0].method, pure_);   // the too-early method waits
  EXPECT_EQ((*actions)[0].method2, impure_);
}

TEST_F(CompilerTest, ReturnEqualsArmsEverySideEffectFreeDirection) {
  const PredicateId both_pure = Intern(Predicate{
      .kind = PredKind::kReturnEquals, .m1 = pure_, .m2 = pure_});
  auto actions = MakeCompiler().Compile(both_pure);
  ASSERT_TRUE(actions.ok());
  EXPECT_EQ(actions->size(), 2u);

  const PredicateId mixed = Intern(Predicate{
      .kind = PredKind::kReturnEquals, .m1 = impure_, .m2 = pure_});
  auto mixed_actions = MakeCompiler().Compile(mixed);
  ASSERT_TRUE(mixed_actions.ok());
  ASSERT_EQ(mixed_actions->size(), 1u);
  EXPECT_EQ((*mixed_actions)[0].method, pure_);
}

TEST_F(CompilerTest, FailurePredicateIsNotIntervenable) {
  const PredicateId id = Intern(Predicate{.kind = PredKind::kFailure});
  auto compiler = MakeCompiler();
  EXPECT_FALSE(compiler.IsSafelyIntervenable(id));
  EXPECT_FALSE(compiler.Compile(id).ok());
}

TEST_F(CompilerTest, CompoundRequiresBothMembersSafe) {
  const PredicateId safe =
      Intern(Predicate{.kind = PredKind::kMethodFails, .m1 = pure_});
  const PredicateId unsafe =
      Intern(Predicate{.kind = PredKind::kMethodFails, .m1 = impure_});
  const PredicateId race = Intern(Predicate{
      .kind = PredKind::kDataRace, .m1 = pure_, .m2 = impure_, .obj = 0});

  const PredicateId good = Intern(
      Predicate{.kind = PredKind::kCompound, .sub1 = safe, .sub2 = race});
  const PredicateId bad = Intern(
      Predicate{.kind = PredKind::kCompound, .sub1 = safe, .sub2 = unsafe});
  auto compiler = MakeCompiler();
  EXPECT_TRUE(compiler.IsSafelyIntervenable(good));
  EXPECT_FALSE(compiler.IsSafelyIntervenable(bad));

  auto actions = compiler.Compile(good);
  ASSERT_TRUE(actions.ok());
  EXPECT_EQ(actions->size(), 2u);  // union of both members' actions
}

// --- Validate diagnostics (static intervention-point enumeration) --------

TEST_F(CompilerTest, ValidateRejectsOutOfCatalogIds) {
  auto compiler = MakeCompiler();
  const Status status = compiler.Validate(9999);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("outside the catalog"), std::string::npos);
  EXPECT_FALSE(compiler.Validate(kInvalidPredicate).ok());
}

TEST_F(CompilerTest, ValidateRejectsOutOfProgramMethods) {
  const PredicateId id =
      Intern(Predicate{.kind = PredKind::kMethodFails, .m1 = 77});
  const Status status = MakeCompiler().Validate(id);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("outside the program"), std::string::npos);
  EXPECT_FALSE(MakeCompiler().Compile(id).ok());
}

TEST_F(CompilerTest, ValidateNamesTheOffendingMethod) {
  const PredicateId id =
      Intern(Predicate{.kind = PredKind::kMethodFails, .m1 = impure_});
  const Status status = MakeCompiler().Validate(id);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("Impure"), std::string::npos);
  EXPECT_NE(status.message().find("side-effect-free"), std::string::npos);
}

TEST_F(CompilerTest, ValidateAcceptsEverySafeKind) {
  auto compiler = MakeCompiler();
  EXPECT_TRUE(compiler
                  .Validate(Intern(Predicate{.kind = PredKind::kDataRace,
                                             .m1 = pure_,
                                             .m2 = impure_,
                                             .obj = 0}))
                  .ok());
  EXPECT_TRUE(compiler
                  .Validate(Intern(
                      Predicate{.kind = PredKind::kTooFast, .m1 = impure_}))
                  .ok());
  EXPECT_TRUE(compiler
                  .Validate(Intern(Predicate{.kind = PredKind::kWrongReturn,
                                             .m1 = pure_,
                                             .expected = 2}))
                  .ok());
}

TEST_F(CompilerTest, CompilePlanUnionsActions) {
  const PredicateId a =
      Intern(Predicate{.kind = PredKind::kMethodFails, .m1 = pure_});
  const PredicateId b =
      Intern(Predicate{.kind = PredKind::kTooFast, .m1 = impure_});
  auto plan = MakeCompiler().CompilePlan({a, b});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->size(), 2u);
}

}  // namespace
}  // namespace aid
