// Occurrence-indexed predicates (paper Appendix A): multiple executions of
// the same method map to distinct predicates so loop iterations are
// distinguishable in the AC-DAG.

#include <gtest/gtest.h>

#include "predicates/extractor.h"
#include "runtime/vm.h"

namespace aid {
namespace {

std::vector<ExecutionTrace> Collect(const Program& program, int total) {
  std::vector<ExecutionTrace> traces;
  Vm vm(&program);
  for (int i = 0; i < total; ++i) {
    VmOptions options;
    options.seed = 1 + static_cast<uint64_t>(i);
    auto trace = vm.Run(options);
    EXPECT_TRUE(trace.ok());
    traces.push_back(std::move(*trace));
  }
  return traces;
}

/// Step is called twice; only the *second* execution is slow on the failing
/// path.
Result<Program> TwoCallProgram() {
  ProgramBuilder b;
  b.Global("late", 0);
  {
    auto m = b.Method("Step");
    m.SideEffectFree();
    m.LoadGlobal(0, "phase");
    // Slow only when phase == 1 and the coin says so.
    const size_t fast = m.JumpIfZeroPlaceholder(0);
    m.Random(1, 2);
    const size_t fast2 = m.JumpIfZeroPlaceholder(1);
    m.Delay(100).LoadConst(2, 1).StoreGlobal("late", 2);
    m.PatchTarget(fast).PatchTarget(fast2);
    m.Delay(10).Return();
  }
  b.Global("phase", 0);
  {
    auto m = b.Method("Main");
    m.CallVoid("Step")  // occurrence 1: always fast
        .LoadConst(0, 1)
        .StoreGlobal("phase", 0)
        .CallVoid("Step")  // occurrence 2: sometimes slow
        .LoadGlobal(1, "late")
        .ThrowIfNonZero(1, "MissedDeadline")
        .Return();
  }
  return b.Build("Main");
}

TEST(OccurrenceTest, PerOccurrenceDistinguishesLoopIterations) {
  auto program = TwoCallProgram();
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 60);

  ExtractionOptions options;
  options.per_occurrence = true;
  PredicateExtractor extractor(options);
  ASSERT_TRUE(extractor.Observe(traces).ok());

  const SymbolId step = program->method_names().Find("Step");
  const PredicateId slow_second = extractor.catalog().Find(
      Predicate{.kind = PredKind::kTooSlow, .m1 = step, .occurrence = 2});
  const PredicateId slow_first = extractor.catalog().Find(
      Predicate{.kind = PredKind::kTooSlow, .m1 = step, .occurrence = 1});
  // Only the second occurrence ever runs slow.
  EXPECT_NE(slow_second, kInvalidPredicate);
  EXPECT_EQ(slow_first, kInvalidPredicate);

  // And it is observed in exactly the failed runs.
  for (size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(extractor.logs()[i].Has(slow_second), traces[i].failed());
  }
}

TEST(OccurrenceTest, WithoutPerOccurrenceTheMethodIsOnePredicate) {
  auto program = TwoCallProgram();
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 60);

  PredicateExtractor extractor;  // per_occurrence = false
  ASSERT_TRUE(extractor.Observe(traces).ok());
  const SymbolId step = program->method_names().Find("Step");
  const PredicateId slow_any = extractor.catalog().Find(
      Predicate{.kind = PredKind::kTooSlow, .m1 = step, .occurrence = 0});
  EXPECT_NE(slow_any, kInvalidPredicate);
}

TEST(OccurrenceTest, DurationSlackSuppressesBoundaryPredicates) {
  // A method whose duration wobbles +-2 ticks around the baseline must not
  // produce duration predicates once the slack covers the jitter.
  ProgramBuilder b;
  {
    auto m = b.Method("Wobble");
    m.DelayRand(10, 13).Return();
  }
  {
    auto m = b.Method("Main");
    m.CallVoid("Wobble").Random(0, 2).ThrowIfZero(0, "HalfTheTime").Return();
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 60);

  ExtractionOptions strict;
  strict.duration_slack = 0;
  PredicateExtractor no_slack(strict);
  ASSERT_TRUE(no_slack.Observe(traces).ok());

  ExtractionOptions relaxed;
  relaxed.duration_slack = 10;
  PredicateExtractor with_slack(relaxed);
  ASSERT_TRUE(with_slack.Observe(traces).ok());

  auto count_duration_preds = [&](const PredicateExtractor& e) {
    int count = 0;
    for (size_t i = 0; i < e.catalog().size(); ++i) {
      const PredKind kind = e.catalog().Get(static_cast<PredicateId>(i)).kind;
      if (kind == PredKind::kTooSlow || kind == PredKind::kTooFast) ++count;
    }
    return count;
  };
  EXPECT_EQ(count_duration_preds(with_slack), 0);
  EXPECT_GE(count_duration_preds(no_slack),
            count_duration_preds(with_slack));
}

}  // namespace
}  // namespace aid
