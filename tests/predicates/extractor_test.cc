// Predicate extraction tests: each predicate kind from the paper's Figure 2
// (plus atomicity violations, order inversions, and collisions), extracted
// from programs executed on the VM.

#include "predicates/extractor.h"

#include <gtest/gtest.h>

#include "runtime/vm.h"

namespace aid {
namespace {

/// Runs `program` across seeds until it has both outcomes and returns the
/// traces (capped at `total`).
std::vector<ExecutionTrace> Collect(const Program& program, int total,
                                    uint64_t first_seed = 1) {
  std::vector<ExecutionTrace> traces;
  Vm vm(&program);
  for (int i = 0; i < total; ++i) {
    VmOptions options;
    options.seed = first_seed + static_cast<uint64_t>(i);
    auto trace = vm.Run(options);
    EXPECT_TRUE(trace.ok());
    traces.push_back(std::move(*trace));
  }
  return traces;
}

bool CatalogHas(const PredicateCatalog& catalog, PredKind kind,
                PredicateId* out = nullptr) {
  for (size_t i = 0; i < catalog.size(); ++i) {
    if (catalog.Get(static_cast<PredicateId>(i)).kind == kind) {
      if (out != nullptr) *out = static_cast<PredicateId>(i);
      return true;
    }
  }
  return false;
}

TEST(ExtractorTest, RequiresBothOutcomes) {
  ProgramBuilder b;
  b.Method("Main").Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 5);

  PredicateExtractor extractor;
  EXPECT_FALSE(extractor.Observe(traces).ok());  // no failures
}

TEST(ExtractorTest, ObserveTwiceFails) {
  ProgramBuilder b;
  b.Method("Flaky").Random(0, 2).ThrowIfZero(0, "Oops").Return(0);
  b.Method("Main").Call(0, "Flaky").Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 30);

  PredicateExtractor extractor;
  ASSERT_TRUE(extractor.Observe(traces).ok());
  EXPECT_FALSE(extractor.Observe(traces).ok());
}

TEST(ExtractorTest, MethodFailsPredicate) {
  ProgramBuilder b;
  b.Method("Flaky").Random(0, 2).ThrowIfZero(0, "Oops").Return(0);
  b.Method("Main").Call(0, "Flaky").Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 40);

  PredicateExtractor extractor;
  ASSERT_TRUE(extractor.Observe(traces).ok());
  PredicateId fails;
  ASSERT_TRUE(CatalogHas(extractor.catalog(), PredKind::kMethodFails, &fails));

  // MethodFails observed in exactly the failed logs.
  for (size_t i = 0; i < traces.size(); ++i) {
    bool flaky_failed = traces[i].failed();
    bool any_fails_pred = false;
    for (const auto& [id, obs] : extractor.logs()[i].observed) {
      (void)obs;
      if (extractor.catalog().Get(id).kind == PredKind::kMethodFails) {
        any_fails_pred = true;
      }
    }
    EXPECT_EQ(any_fails_pred, flaky_failed);
  }
}

TEST(ExtractorTest, DurationPredicatesUseSuccessfulBaselines) {
  // Work takes 10 ticks on success and 200 on the failing path; the slow
  // path also trips a marker so the run fails.
  ProgramBuilder b;
  b.Global("marker", 0);
  {
    auto m = b.Method("Work");
    m.Random(0, 2);
    const size_t slow = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(10);
    const size_t done = m.JumpPlaceholder();
    m.PatchTarget(slow);
    m.Delay(200).LoadConst(1, 1).StoreGlobal("marker", 1);
    m.PatchTarget(done);
    m.Return();
  }
  {
    auto m = b.Method("Main");
    m.CallVoid("Work").LoadGlobal(0, "marker").ThrowIfNonZero(0, "TooLate").Return();
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 40);

  PredicateExtractor extractor;
  ASSERT_TRUE(extractor.Observe(traces).ok());
  const PredicateId slow_id = extractor.catalog().Find(Predicate{
      .kind = PredKind::kTooSlow,
      .m1 = program->method_names().Find("Work")});
  ASSERT_NE(slow_id, kInvalidPredicate);

  // The baseline reflects successful durations only.
  const auto& baseline =
      extractor.baselines().at(program->method_names().Find("Work"));
  EXPECT_LT(baseline.max_duration, 100);
}

TEST(ExtractorTest, TooSlowObservationStampsOnset) {
  // The observation window of a too-slow predicate ends at
  // enter + max_successful_duration, not at the method's exit.
  ProgramBuilder b;
  b.Global("marker", 0);
  {
    auto m = b.Method("Work");
    m.Random(0, 2);
    const size_t slow = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(10);
    const size_t done = m.JumpPlaceholder();
    m.PatchTarget(slow);
    m.Delay(300).LoadConst(1, 1).StoreGlobal("marker", 1);
    m.PatchTarget(done);
    m.Return();
  }
  {
    auto m = b.Method("Main");
    m.CallVoid("Work").LoadGlobal(0, "marker").ThrowIfNonZero(0, "TooLate").Return();
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 40);

  PredicateExtractor extractor;
  ASSERT_TRUE(extractor.Observe(traces).ok());
  PredicateId slow_id = kInvalidPredicate;
  ASSERT_TRUE(CatalogHas(extractor.catalog(), PredKind::kTooSlow, &slow_id));
  for (size_t i = 0; i < traces.size(); ++i) {
    auto it = extractor.logs()[i].observed.find(slow_id);
    if (it == extractor.logs()[i].observed.end()) continue;
    // Slow executions run ~300 ticks; the onset is within the first ~40.
    EXPECT_LT(it->second.end - it->second.start, 60);
  }
}

TEST(ExtractorTest, WrongReturnRequiresConsistentBaseline) {
  ProgramBuilder b;
  b.Global("flag", 0);
  {
    // Returns 7 normally; 0 when the flag was corrupted.
    auto m = b.Method("GetValue");
    m.LoadGlobal(0, "flag").LoadConst(1, 7).Mul(2, 0, 1).Return(2);
  }
  {
    auto m = b.Method("Main");
    m.Random(0, 2)
        .StoreGlobal("flag", 0)  // 0 or 1
        .Call(1, "GetValue")
        .ThrowIfZero(1, "BadValue")
        .Return(1);
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 40);

  PredicateExtractor extractor;
  ASSERT_TRUE(extractor.Observe(traces).ok());
  PredicateId wrong = kInvalidPredicate;
  ASSERT_TRUE(CatalogHas(extractor.catalog(), PredKind::kWrongReturn, &wrong));
  EXPECT_EQ(extractor.catalog().Get(wrong).expected, 7);
}

TEST(ExtractorTest, OrderInversionOnlyWhenStartingInsideInterval) {
  ProgramBuilder b;
  b.Global("ready", 0);
  {
    auto m = b.Method("Publisher");
    m.Random(0, 2);
    const size_t slow = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(5);
    const size_t pub = m.JumpPlaceholder();
    m.PatchTarget(slow);
    m.Delay(60);
    m.PatchTarget(pub);
    m.LoadConst(0, 1).StoreGlobal("ready", 0).Return();
  }
  {
    auto m = b.Method("Consumer");
    m.Delay(30).CallVoid("Check").Return();
  }
  {
    auto m = b.Method("Check");
    m.LoadGlobal(0, "ready").ThrowIfZero(0, "NotReady").Return(0);
  }
  {
    auto m = b.Method("Main");
    m.Spawn(0, "Publisher").Spawn(1, "Consumer").Join(0).Join(1).Return();
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 60);

  PredicateExtractor extractor;
  ASSERT_TRUE(extractor.Observe(traces).ok());

  // "Check starts before Publisher finishes" must be observed in exactly
  // the failed runs (slow publisher).
  const Predicate expected{
      .kind = PredKind::kOrder,
      .m1 = program->method_names().Find("Check"),
      .m2 = program->method_names().Find("Publisher")};
  const PredicateId id = extractor.catalog().Find(expected);
  ASSERT_NE(id, kInvalidPredicate);
  for (size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(extractor.logs()[i].Has(id), traces[i].failed()) << "run " << i;
  }
}

TEST(ExtractorTest, FailurePredicateMatchesOutcome) {
  ProgramBuilder b;
  b.Method("Flaky").Random(0, 2).ThrowIfZero(0, "Oops").Return(0);
  b.Method("Main").Call(0, "Flaky").Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 30);

  PredicateExtractor extractor;
  ASSERT_TRUE(extractor.Observe(traces).ok());
  const PredicateId failure = extractor.failure_predicate();
  ASSERT_NE(failure, kInvalidPredicate);
  for (size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(extractor.logs()[i].Has(failure), traces[i].failed());
    EXPECT_EQ(extractor.logs()[i].failed, traces[i].failed());
  }
}

TEST(ExtractorTest, EvaluateUsesFrozenCatalog) {
  ProgramBuilder b;
  b.Method("Flaky").Random(0, 2).ThrowIfZero(0, "Oops").Return(0);
  b.Method("Main").Call(0, "Flaky").Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 30);

  PredicateExtractor extractor;
  ASSERT_TRUE(extractor.Observe(traces).ok());
  const size_t catalog_size = extractor.catalog().size();

  auto fresh = Collect(*program, 10, /*first_seed=*/1000);
  for (const auto& trace : fresh) {
    auto log = extractor.Evaluate(trace);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ(log->failed, trace.failed());
  }
  EXPECT_EQ(extractor.catalog().size(), catalog_size);  // unchanged
}

TEST(ExtractorTest, CompoundPredicateIsConjunction) {
  ProgramBuilder b;
  b.Method("Flaky").Random(0, 2).ThrowIfZero(0, "Oops").Return(0);
  b.Method("Main").Call(0, "Flaky").Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 30);

  PredicateExtractor extractor;
  ASSERT_TRUE(extractor.Observe(traces).ok());
  PredicateId fails;
  ASSERT_TRUE(CatalogHas(extractor.catalog(), PredKind::kMethodFails, &fails));

  auto compound = extractor.AddCompound(extractor.failure_predicate(), fails);
  ASSERT_TRUE(compound.ok());
  for (size_t i = 0; i < traces.size(); ++i) {
    const PredicateLog& log = extractor.logs()[i];
    EXPECT_EQ(log.Has(*compound),
              log.Has(extractor.failure_predicate()) && log.Has(fails));
  }
}

TEST(ExtractorTest, CompoundRejectsInvalidMembers) {
  ProgramBuilder b;
  b.Method("Flaky").Random(0, 2).ThrowIfZero(0, "Oops").Return(0);
  b.Method("Main").Call(0, "Flaky").Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 30);

  PredicateExtractor extractor;
  EXPECT_FALSE(extractor.AddCompound(0, 1).ok());  // before Observe
  ASSERT_TRUE(extractor.Observe(traces).ok());
  EXPECT_FALSE(extractor.AddCompound(0, 0).ok());      // a == b
  EXPECT_FALSE(extractor.AddCompound(0, 99999).ok());  // out of range
}

TEST(ExtractorTest, AtomicityViolationDetectsIntruder) {
  // Two unlocked read-modify-writes: the intruder's access lands between
  // the victim's load and store on some interleavings.
  ProgramBuilder b;
  b.Global("count", 0);
  {
    auto m = b.Method("Reporter");
    m.DelayRand(0, 30).CallVoid("Incr").Return();
  }
  {
    auto m = b.Method("Incr");
    m.LoadGlobal(0, "count").Delay(6).AddImm(1, 0, 1).StoreGlobal("count", 1).Return();
  }
  {
    auto m = b.Method("Main");
    m.Spawn(0, "Reporter")
        .Spawn(1, "Reporter")
        .Join(0)
        .Join(1)
        .LoadGlobal(2, "count")
        .LoadConst(3, 2)
        .CmpEq(4, 2, 3)
        .ThrowIfZero(4, "LostUpdate")
        .Return(2);
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 60);

  PredicateExtractor extractor;
  ASSERT_TRUE(extractor.Observe(traces).ok());
  const SymbolId incr = program->method_names().Find("Incr");
  const PredicateId atom = extractor.catalog().Find(
      Predicate{.kind = PredKind::kAtomicityViolation,
                .m1 = incr,
                .m2 = incr,
                .obj = program->object_names().Find("count")});
  ASSERT_NE(atom, kInvalidPredicate);
  // Observed in every failed run (it is the root cause of the lost update).
  for (size_t i = 0; i < traces.size(); ++i) {
    if (traces[i].failed()) {
      EXPECT_TRUE(extractor.logs()[i].Has(atom)) << "failed run " << i;
    }
  }
}

TEST(ExtractorTest, ReturnEqualsDetectsCollisions) {
  ProgramBuilder b;
  b.Method("PickA").Random(0, 3).Return(0);
  b.Method("PickB").Random(0, 3).Return(0);
  {
    auto m = b.Method("Main");
    m.Call(0, "PickA").Call(1, "PickB").CmpEq(2, 0, 1).ThrowIfNonZero(2, "Clash").Return();
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto traces = Collect(*program, 60);

  ExtractionOptions options;
  options.return_equals = true;
  PredicateExtractor extractor(options);
  ASSERT_TRUE(extractor.Observe(traces).ok());
  PredicateId eq = kInvalidPredicate;
  ASSERT_TRUE(CatalogHas(extractor.catalog(), PredKind::kReturnEquals, &eq));
  for (size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(extractor.logs()[i].Has(eq), traces[i].failed()) << "run " << i;
  }
}

}  // namespace
}  // namespace aid
