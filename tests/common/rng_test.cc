#include "common/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace aid {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.5)) ++heads;
  }
  EXPECT_GT(heads, 4600);
  EXPECT_LT(heads, 5400);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork(1);
  Rng parent2(23);
  Rng child2 = parent2.Fork(1);
  // Forks are deterministic...
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child.Next(), child2.Next());
  }
  // ...and differ across stream ids.
  Rng parent3(23);
  Rng other = parent3.Fork(2);
  Rng parent4(23);
  Rng one = parent4.Fork(1);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (other.Next() != one.Next()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, PickReturnsMember) {
  Rng rng(29);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int p = rng.Pick(v);
    EXPECT_TRUE(p == 10 || p == 20 || p == 30);
  }
}

}  // namespace
}  // namespace aid
