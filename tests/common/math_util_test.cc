#include "common/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace aid {
namespace {

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 2), 5);
  EXPECT_EQ(CeilDiv(11, 2), 6);
  EXPECT_EQ(CeilDiv(1, 7), 1);
  EXPECT_EQ(CeilDiv(0, 7), 0);
}

TEST(MathUtilTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(MathUtilTest, Log2BinomialMatchesSmallCases) {
  // C(5, 2) = 10.
  EXPECT_NEAR(Log2Binomial(5, 2), std::log2(10.0), 1e-9);
  // C(10, 5) = 252.
  EXPECT_NEAR(Log2Binomial(10, 5), std::log2(252.0), 1e-9);
  EXPECT_DOUBLE_EQ(Log2Binomial(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(Log2Binomial(7, 7), 0.0);
}

TEST(MathUtilTest, Log2BinomialLargeDoesNotOverflow) {
  const double v = Log2Binomial(300, 30);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 300.0);  // at most N bits
}

TEST(MathUtilTest, GroupTestingCrossover) {
  // D < N / log2(N): worthwhile.
  EXPECT_TRUE(GroupTestingWorthwhile(64, 5));   // 64/6 ~ 10.7
  EXPECT_FALSE(GroupTestingWorthwhile(64, 11));
  EXPECT_FALSE(GroupTestingWorthwhile(2, 1));
}

}  // namespace
}  // namespace aid
