#include "common/strings.h"

#include <gtest/gtest.h>

namespace aid {
namespace {

TEST(StringsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("x=%d", 5), "x=5");
  EXPECT_EQ(StrFormat("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrFormatLongOutput) {
  std::string big(500, 'x');
  EXPECT_EQ(StrFormat("%s!", big.c_str()).size(), 501u);
}

TEST(StringsTest, JoinVariants) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split(",a,", ',').size(), 3u);
  EXPECT_EQ(Split("", ',').size(), 1u);
  const auto parts = Split("x\ty", '\t');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "x");
  EXPECT_EQ(parts[1], "y");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("\t\na b\n"), "a b");
}

}  // namespace
}  // namespace aid
