#include "common/status.h"

#include <gtest/gtest.h>

namespace aid {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad index");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad index");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad index");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnIfError(bool fail) {
  AID_RETURN_IF_ERROR(fail ? Fails() : Succeeds());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
}

Result<int> MakeValue(bool fail) {
  if (fail) return Status::OutOfRange("nope");
  return 5;
}

Result<int> UseAssignOrReturn(bool fail) {
  AID_ASSIGN_OR_RETURN(int v, MakeValue(fail));
  return v + 1;
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsOrPropagates) {
  Result<int> ok = UseAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 6);
  Result<int> bad = UseAssignOrReturn(true);
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace aid
