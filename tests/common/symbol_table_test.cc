#include "common/symbol_table.h"

#include <gtest/gtest.h>

namespace aid {
namespace {

TEST(SymbolTableTest, InternAssignsDenseIds) {
  SymbolTable t;
  EXPECT_EQ(t.Intern("a"), 0);
  EXPECT_EQ(t.Intern("b"), 1);
  EXPECT_EQ(t.Intern("a"), 0);  // idempotent
  EXPECT_EQ(t.size(), 2u);
}

TEST(SymbolTableTest, FindWithoutIntern) {
  SymbolTable t;
  t.Intern("x");
  EXPECT_EQ(t.Find("x"), 0);
  EXPECT_EQ(t.Find("y"), kInvalidSymbol);
  EXPECT_EQ(t.size(), 1u);
}

TEST(SymbolTableTest, NameRoundTrip) {
  SymbolTable t;
  const SymbolId id = t.Intern("method_name");
  EXPECT_EQ(t.Name(id), "method_name");
  EXPECT_EQ(t.Name(kInvalidSymbol), "<invalid>");
  EXPECT_EQ(t.Name(999), "<invalid>");
}

}  // namespace
}  // namespace aid
