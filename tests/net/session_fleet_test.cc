// Session-level tests of the remote fleet: bit-identical reports between
// in-process and loopback-fleet runs at several worker counts, flaky and
// VM-program subjects across the wire, builder validation, and a runner
// killed mid-session degrading into crashed-trial accounting + failover
// instead of an engine failure.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "net/runner.h"
#include "runtime/program.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

#if AID_NET_SUPPORTED

class SessionFleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticAppOptions options;
    options.max_threads = 12;
    options.seed = 7;
    auto model = GenerateSyntheticApp(options);
    ASSERT_TRUE(model.ok()) << model.status();
    model_ = std::move(*model);
    for (int i = 0; i < 2; ++i) {
      auto runner = Runner::Start();
      ASSERT_TRUE(runner.ok()) << runner.status();
      fleet_.push_back((*runner)->endpoint().ToString());
      runners_.push_back(std::move(*runner));
    }
  }

  std::vector<std::string> Fleet() const { return fleet_; }

  std::unique_ptr<GroundTruthModel> model_;
  std::vector<std::unique_ptr<Runner>> runners_;
  std::vector<std::string> fleet_;
};

void ExpectSameDiscovery(const DiscoveryReport& a, const DiscoveryReport& b) {
  EXPECT_EQ(a.causal_path, b.causal_path);
  EXPECT_EQ(a.spurious, b.spurious);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.speculative_executions, b.speculative_executions);
}

TEST_F(SessionFleetTest, FleetReportsAreBitIdenticalToInProcessRuns) {
  for (int workers : {1, 2, 4}) {
    auto baseline = SessionBuilder()
                        .WithModel(model_.get())
                        .WithTrials(3)
                        .WithParallelism(workers)
                        .Build();
    ASSERT_TRUE(baseline.ok()) << baseline.status();
    auto baseline_report = baseline->Run();
    ASSERT_TRUE(baseline_report.ok()) << baseline_report.status();

    auto fleet = SessionBuilder()
                     .WithModel(model_.get())
                     .WithTrials(3)
                     .WithParallelism(workers)
                     .WithRemoteFleet(Fleet(), /*trial_deadline_ms=*/20000)
                     .Build();
    ASSERT_TRUE(fleet.ok()) << fleet.status();
    auto fleet_report = fleet->Run();
    ASSERT_TRUE(fleet_report.ok()) << fleet_report.status();

    ExpectSameDiscovery(baseline_report->discovery, fleet_report->discovery);
    EXPECT_EQ(fleet_report->discovery.crashed_trials, 0);
    EXPECT_EQ(fleet_report->discovery.timed_out_trials, 0);
    EXPECT_EQ(fleet_report->discovery.respawns, 0);
  }
}

TEST_F(SessionFleetTest, FlakySubjectsStayDeterministicAcrossTheFleet) {
  auto baseline = SessionBuilder()
                      .WithFlakyModel(model_.get(), 0.7, /*seed=*/5)
                      .WithTrials(3)
                      .WithParallelism(2)
                      .Build();
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  auto baseline_report = baseline->Run();
  ASSERT_TRUE(baseline_report.ok()) << baseline_report.status();

  auto fleet = SessionBuilder()
                   .WithFlakyModel(model_.get(), 0.7, /*seed=*/5)
                   .WithTrials(3)
                   .WithParallelism(2)
                   .WithRemoteFleet(Fleet(), /*trial_deadline_ms=*/20000)
                   .Build();
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  auto fleet_report = fleet->Run();
  ASSERT_TRUE(fleet_report.ok()) << fleet_report.status();

  ExpectSameDiscovery(baseline_report->discovery, fleet_report->discovery);
}

TEST_F(SessionFleetTest, VmProgramsShipWholeToTheRunners) {
  // A hand-built VM program with an intermittent atomicity bug (the
  // quickstart subject, condensed): the runner-side child deserializes it,
  // re-runs the observation scan, and must land on the identical predicate
  // catalog and discovery report.
  ProgramBuilder b;
  b.Global("version", 1);
  b.Global("checksum", 1);
  {
    auto m = b.Method("Main");
    m.Spawn(0, "Writer").Spawn(1, "Reader").Join(0).Join(1).Return();
  }
  {
    auto m = b.Method("Writer");
    m.Random(0, 2);
    const size_t late = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(10);
    const size_t go = m.JumpPlaceholder();
    m.PatchTarget(late);
    m.Delay(70);
    m.PatchTarget(go);
    m.CallVoid("PublishConfig").Return();
  }
  {
    auto m = b.Method("PublishConfig");
    m.LoadConst(1, 2)
        .StoreGlobal("version", 1)
        .Delay(30)
        .StoreGlobal("checksum", 1)
        .Return();
  }
  {
    auto m = b.Method("Reader");
    m.Random(0, 2);
    const size_t late = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(30);
    const size_t go = m.JumpPlaceholder();
    m.PatchTarget(late);
    m.Delay(85);
    m.PatchTarget(go);
    m.CallVoid("ValidateConfig").Return();
  }
  {
    auto m = b.Method("ValidateConfig");
    m.SideEffectFree();
    m.LoadGlobal(0, "version")
        .LoadGlobal(1, "checksum")
        .CmpEq(2, 0, 1)
        .ThrowIfZero(2, "ChecksumMismatch")
        .Return(2);
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok()) << program.status();

  auto baseline = SessionBuilder().WithProgram(&*program).WithTrials(2).Build();
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  auto baseline_report = baseline->Run();
  ASSERT_TRUE(baseline_report.ok()) << baseline_report.status();

  auto fleet = SessionBuilder()
                   .WithProgram(&*program)
                   .WithTrials(2)
                   .WithRemoteFleet(Fleet(), /*trial_deadline_ms=*/60000)
                   .Build();
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  auto fleet_report = fleet->Run();
  ASSERT_TRUE(fleet_report.ok()) << fleet_report.status();

  ExpectSameDiscovery(baseline_report->discovery, fleet_report->discovery);
}

/// Stops one runner daemon after the first finished round -- from the
/// engine's driving thread, so the loss lands mid-session,
/// deterministically.
class RunnerAssassin : public Observer {
 public:
  explicit RunnerAssassin(Runner* victim) : victim_(victim) {}
  void OnRoundFinished(const ObservedRound&) override {
    if (victim_ != nullptr) {
      victim_->Stop();
      victim_ = nullptr;
    }
  }

 private:
  Runner* victim_;
};

TEST_F(SessionFleetTest, KilledRunnerMidSessionDegradesInsteadOfFailing) {
  RunnerAssassin assassin(runners_[0].get());
  auto session = SessionBuilder()
                     .WithModel(model_.get())
                     .WithTrials(3)
                     .WithParallelism(2)
                     .WithRemoteFleet(Fleet(), /*trial_deadline_ms=*/20000)
                     .WithObserver(&assassin)
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  // The session completed; the turbulence is in the books. (Both replicas
  // may have lived on runner 0's connections at the moment it died, so we
  // only bound the counters from below.)
  EXPECT_GE(report->discovery.crashed_trials, 1);
  EXPECT_GE(report->discovery.respawns, 1);
  EXPECT_EQ(report->discovery.crashed_trials + report->discovery.timed_out_trials,
            report->discovery.respawns);
}

TEST_F(SessionFleetTest, BuilderRejectsFleetMisconfigurations) {
  // Empty endpoint list.
  auto empty = SessionBuilder()
                   .WithModel(model_.get())
                   .WithRemoteFleet({})
                   .Build();
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  // Unparseable endpoint.
  auto garbled = SessionBuilder()
                     .WithModel(model_.get())
                     .WithRemoteFleet({"not-an-endpoint"})
                     .Build();
  ASSERT_FALSE(garbled.ok());
  EXPECT_EQ(garbled.status().code(), StatusCode::kInvalidArgument);

  // Fleet and subprocess isolation are mutually exclusive.
  auto both = SessionBuilder()
                  .WithModel(model_.get())
                  .WithProcessIsolation(1000)
                  .WithRemoteFleet(Fleet())
                  .Build();
  ASSERT_FALSE(both.ok());
  EXPECT_EQ(both.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(both.status().message().find("mutually exclusive"),
            std::string::npos);

  // Negative deadline.
  auto negative = SessionBuilder()
                      .WithModel(model_.get())
                      .WithRemoteFleet(Fleet(), -5)
                      .Build();
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);

  // Prebuilt targets cannot be shipped to runners.
  auto prebuilt_target = MakeModelSessionTarget(model_.get());
  ASSERT_TRUE(prebuilt_target.ok());
  auto prebuilt = SessionBuilder()
                      .WithTarget(std::move(*prebuilt_target))
                      .WithRemoteFleet(Fleet())
                      .Build();
  ASSERT_FALSE(prebuilt.ok());
  EXPECT_EQ(prebuilt.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(prebuilt.status().message().find("factory backend"),
            std::string::npos);
}

TEST_F(SessionFleetTest, InjectedFleetChaosSurfacesInTheSessionReport) {
  // Deterministic crash injection through the factory config: the session
  // completes and the report carries the accounting.
  TargetConfig config;
  config.model = model_.get();
  config.fleet = Fleet();
  config.remote.trial_deadline_ms = 20000;
  config.remote.inject_crash_period = 7;
  auto session = SessionBuilder()
                     .WithTarget("model", std::move(config))
                     .WithTrials(3)
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->discovery.crashed_trials, 1);
  EXPECT_EQ(report->discovery.respawns, report->discovery.crashed_trials);
}

#else  // !AID_NET_SUPPORTED

TEST(SessionFleetTest, UnsupportedPlatformFailsBuildWithUnimplemented) {
  auto session = SessionBuilder()
                     .WithCaseStudy("kafka")
                     .WithRemoteFleet({"localhost:7601"})
                     .Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kUnimplemented);
}

#endif  // AID_NET_SUPPORTED

}  // namespace
}  // namespace aid
