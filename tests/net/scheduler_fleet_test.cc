// Heterogeneous-fleet tests of the latency-aware scheduler (exec/scheduler.h
// + net/latency.h): bit-identical reports with one runner 10x slower than
// the rest, latency-learned replica placement avoiding the slow runner,
// LatencyBoard unit behavior, the FleetTarget cursor-commit-on-success
// regression, and a slow runner killed mid-session degrading (not failing)
// under work stealing.

#include <chrono>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <cstdlib>

#include "api/session.h"
#include "common/strings.h"
#include "exec/parallel_target.h"
#include "net/fleet_target.h"
#include "net/latency.h"
#include "net/runner.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

// --- LatencyBoard units (platform-independent) ----------------------------

TEST(LatencyBoardTest, UnmeasuredEndpointsPlaceRoundRobin) {
  LatencyBoard board;
  const std::vector<Endpoint> fleet = {
      {"a", 1}, {"b", 2}, {"c", 3}};
  for (int i = 0; i < 6; ++i) board.PlaceReplica(fleet);
  // With no latency data the board must reproduce blind round-robin:
  // exploration balances placements exactly.
  EXPECT_EQ(board.placements(fleet[0]), 2u);
  EXPECT_EQ(board.placements(fleet[1]), 2u);
  EXPECT_EQ(board.placements(fleet[2]), 2u);
}

TEST(LatencyBoardTest, MeasuredPlacementAvoidsTheSlowEndpoint) {
  LatencyBoard board;
  const std::vector<Endpoint> fleet = {
      {"fast1", 1}, {"fast2", 2}, {"slow", 3}};
  board.RecordTrial(fleet[0], 100);
  board.RecordTrial(fleet[1], 100);
  board.RecordTrial(fleet[2], 1000);  // 10x slower
  for (int i = 0; i < 4; ++i) board.PlaceReplica(fleet);
  // Predicted per-replica latency (ewma x (placements + 1)) keeps every
  // placement off the slow endpoint until the fast ones are loaded ~10x.
  EXPECT_EQ(board.placements(fleet[2]), 0u);
  EXPECT_EQ(board.placements(fleet[0]) + board.placements(fleet[1]), 4u);
}

TEST(LatencyBoardTest, EwmaSmoothsSamples) {
  LatencyBoard board(/*ewma_alpha=*/0.25);
  const Endpoint endpoint{"a", 1};
  EXPECT_EQ(board.ewma_micros(endpoint), 0u);  // unmeasured sentinel
  board.RecordTrial(endpoint, 100);
  EXPECT_EQ(board.ewma_micros(endpoint), 100u);
  board.RecordTrial(endpoint, 300);
  EXPECT_EQ(board.ewma_micros(endpoint), 150u);  // 0.25*300 + 0.75*100
}

#if AID_NET_SUPPORTED

/// Two full-speed runners plus one 10x-slower runner (it charges an extra
/// delay per trial, modeling a loaded machine; loopback RPC is ~a few
/// hundred us, so a few ms of injected delay dominates cleanly).
///
/// The fleet is embedded by default. Set AID_TEST_FLEET to
/// "fast:port,fast:port,slow:port" (the THIRD endpoint must be the slow
/// runner, e.g. `aid_runner --slow-us 3000`) to drive external runner
/// processes instead -- that is how CI runs this suite under
/// ThreadSanitizer, whose runtime cannot survive the runner's
/// fork-without-exec session children in-process, while the engine-side
/// machinery under test (chunk queues, steals, EWMA atomics, the latency
/// board) stays fully instrumented.
class SchedulerFleetTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kSlowTrialDelayUs = 3000;

  void SetUp() override {
    SyntheticAppOptions options;
    options.max_threads = 12;
    options.seed = 7;
    auto model = GenerateSyntheticApp(options);
    ASSERT_TRUE(model.ok()) << model.status();
    model_ = std::move(*model);
    if (const char* external = std::getenv("AID_TEST_FLEET")) {
      fleet_ = Split(external, ',');
      ASSERT_EQ(fleet_.size(), 3u)
          << "AID_TEST_FLEET wants \"fast,fast,slow\" endpoints, got '"
          << external << "'";
      return;
    }
    for (int i = 0; i < 3; ++i) {
      RunnerOptions runner_options;
      if (i == 2) runner_options.trial_delay_us = kSlowTrialDelayUs;
      auto runner = Runner::Start(runner_options);
      ASSERT_TRUE(runner.ok()) << runner.status();
      fleet_.push_back((*runner)->endpoint().ToString());
      runners_.push_back(std::move(*runner));
    }
  }

  bool ExternalFleet() const { return runners_.empty(); }

  Endpoint SlowEndpoint() const {
    auto endpoint = ParseEndpoint(fleet_[2]);
    EXPECT_TRUE(endpoint.ok()) << endpoint.status();
    return *endpoint;
  }

  Endpoint FastEndpoint(int i) const {
    auto endpoint = ParseEndpoint(fleet_[static_cast<size_t>(i)]);
    EXPECT_TRUE(endpoint.ok()) << endpoint.status();
    return *endpoint;
  }

  std::unique_ptr<GroundTruthModel> model_;
  std::vector<std::unique_ptr<Runner>> runners_;
  std::vector<std::string> fleet_;
};

TEST_F(SchedulerFleetTest, HeterogeneousFleetReportsAreBitIdentical) {
  for (int workers : {2, 4}) {
    auto baseline = SessionBuilder()
                        .WithModel(model_.get())
                        .WithTrials(6)
                        .WithParallelism(workers)
                        .Build();
    ASSERT_TRUE(baseline.ok()) << baseline.status();
    auto baseline_report = baseline->Run();
    ASSERT_TRUE(baseline_report.ok()) << baseline_report.status();

    auto fleet = SessionBuilder()
                     .WithModel(model_.get())
                     .WithTrials(6)
                     .WithParallelism(workers)
                     .WithRemoteFleet(fleet_, /*trial_deadline_ms=*/20000)
                     .Build();
    ASSERT_TRUE(fleet.ok()) << fleet.status();
    auto fleet_report = fleet->Run();
    ASSERT_TRUE(fleet_report.ok()) << fleet_report.status();

    // THE contract: a straggling runner, fine-grained chunks, latency
    // learning, and stealing may move every trial around -- and not one
    // byte of the decisions.
    EXPECT_TRUE(SameDiscoveryOutcome(baseline_report->discovery,
                                     fleet_report->discovery));
    EXPECT_EQ(fleet_report->discovery.crashed_trials, 0u);
    EXPECT_EQ(fleet_report->discovery.timed_out_trials, 0u);
    // Dispatch accounting stays exact under heterogeneity.
    ASSERT_EQ(fleet_report->discovery.replica_trials.size(),
              static_cast<size_t>(workers));
    EXPECT_EQ(std::accumulate(fleet_report->discovery.replica_trials.begin(),
                              fleet_report->discovery.replica_trials.end(),
                              uint64_t{0}),
              fleet_report->discovery.executions);
  }
}

TEST_F(SchedulerFleetTest, LearnedLatencySteersNewReplicasOffTheSlowRunner) {
  SubjectSpec spec;
  spec.kind = SubjectKind::kModel;
  spec.model = model_.get();
  auto endpoints_or = ParseEndpoints(fleet_);
  ASSERT_TRUE(endpoints_or.ok()) << endpoints_or.status();
  std::vector<Endpoint> endpoints = *endpoints_or;
  RemoteOptions options;
  options.trial_deadline_ms = 20000;
  auto fleet = FleetTarget::Create(endpoints, spec, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status();

  // Learning pass: a pool over the fleet (initial placement is blind
  // round-robin -- no data yet -- so the slow runner hosts a replica and
  // gets measured).
  auto pool = ParallelTarget::Create(fleet->get(), 3);
  ASSERT_TRUE(pool.ok()) << pool.status();
  auto run = (*pool)->RunIntervened({}, 30);
  ASSERT_TRUE(run.ok()) << run.status();

  const LatencyBoard& board = (*fleet)->latency_board();
  const Endpoint slow = SlowEndpoint();
  ASSERT_GT(board.ewma_micros(slow), 0u) << "slow runner never measured";
  for (int i = 0; i < 2; ++i) {
    EXPECT_GT(board.ewma_micros(slow), board.ewma_micros(FastEndpoint(i)))
        << "runner " << i;
  }

  // New replicas dealt after learning avoid the slow runner entirely.
  // (Held alive: a dying replica releases its board placement.)
  const uint64_t slow_placements_before = board.placements(slow);
  const uint64_t fast_placements_before =
      board.placements(FastEndpoint(0)) + board.placements(FastEndpoint(1));
  std::vector<std::unique_ptr<ReplicableTarget>> held;
  for (int i = 0; i < 4; ++i) {
    auto clone = (*fleet)->Clone();
    ASSERT_TRUE(clone.ok()) << clone.status();
    held.push_back(std::move(*clone));
  }
  EXPECT_EQ(board.placements(slow), slow_placements_before);
  EXPECT_EQ(board.placements(FastEndpoint(0)) +
                board.placements(FastEndpoint(1)),
            fast_placements_before + 4);
  // Releasing them hands the placements back (the anti-ghost contract for
  // repeated pools over one fleet).
  held.clear();
  EXPECT_EQ(board.placements(FastEndpoint(0)) +
                board.placements(FastEndpoint(1)),
            fast_placements_before);
}

TEST_F(SchedulerFleetTest, FleetCursorCommitsOnlyOnSuccess) {
  SubjectSpec spec;
  spec.kind = SubjectKind::kModel;
  spec.model = model_.get();
  auto endpoints_or = ParseEndpoints(fleet_);
  ASSERT_TRUE(endpoints_or.ok()) << endpoints_or.status();
  std::vector<Endpoint> endpoints = *endpoints_or;
  RemoteOptions options;
  options.trial_deadline_ms = 20000;
  // Crash on the 3rd trial with no reconnect budget: the call fails
  // mid-stream after consuming a partial prefix.
  options.inject_crash_period = 3;
  options.max_reconnects = 0;
  auto fleet = FleetTarget::Create(endpoints, spec, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status();

  auto result = (*fleet)->RunIntervened({}, 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  // Regression: the cursor used to adopt the replica's half-advanced
  // position on failure, desyncing it from what serial dispatch -- which
  // stops at its first error -- consumed. It must still read 0.
  EXPECT_EQ((*fleet)->trial_position(), 0u);
}

/// Stops one runner daemon after the first finished round -- from the
/// engine's driving thread, so the loss lands mid-session,
/// deterministically.
class RunnerAssassin : public Observer {
 public:
  explicit RunnerAssassin(Runner* victim) : victim_(victim) {}
  void OnRoundFinished(const ObservedRound&) override {
    if (victim_ != nullptr) {
      victim_->Stop();
      victim_ = nullptr;
    }
  }

 private:
  Runner* victim_;
};

TEST_F(SchedulerFleetTest, KilledRunnerDegradesUnderWorkStealing) {
  if (ExternalFleet()) {
    GTEST_SKIP() << "external runners (AID_TEST_FLEET) cannot be killed "
                    "from the test";
  }
  // Kill a FAST runner: the scheduler deliberately starves the straggler
  // of work, so killing the slow one can be a silent no-op -- a fast
  // runner's replica is guaranteed traffic every round, making the crash
  // observation deterministic.
  RunnerAssassin assassin(runners_[0].get());
  auto session = SessionBuilder()
                     .WithModel(model_.get())
                     .WithTrials(4)
                     .WithParallelism(3)
                     .WithRemoteFleet(fleet_, /*trial_deadline_ms=*/20000)
                     .WithObserver(&assassin)
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();
  // The session completed despite losing a runner mid-session on a
  // heterogeneous fleet: the lost replica's trials became crashed trials
  // + failovers (placed by the latency board), never an engine failure --
  // the fail-fast path only fires on hard errors, not on recoverable
  // crash degradation.
  EXPECT_GE(report->discovery.crashed_trials +
                report->discovery.timed_out_trials,
            1u);
  EXPECT_GE(report->discovery.respawns, 1u);
}

#else  // !AID_NET_SUPPORTED

TEST(SchedulerFleetTest, UnsupportedPlatformStillValidatesSchedulers) {
  SchedulerOptions bad;
  bad.chunks_per_worker = 0;
  EXPECT_EQ(ValidateSchedulerOptions(bad).code(),
            StatusCode::kInvalidArgument);
}

#endif  // AID_NET_SUPPORTED

}  // namespace
}  // namespace aid
