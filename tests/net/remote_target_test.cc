// Tests of net::RemoteTarget against a live in-process Runner: handshake +
// trial parity with the in-process backends, positional determinism of
// flaky subjects across the network boundary, keepalive, and the failure
// lifecycle (killed session children, injected crashes, dead runners,
// reconnect accounting).

#include "net/remote_target.h"

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#if AID_NET_SUPPORTED
#include <poll.h>
#endif

#include "net/fleet_target.h"
#include "net/runner.h"
#include "synth/flaky_target.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

#if AID_NET_SUPPORTED

std::unique_ptr<GroundTruthModel> MakeModel(uint64_t seed = 11) {
  SyntheticAppOptions options;
  options.max_threads = 10;
  options.seed = seed;
  auto model = GenerateSyntheticApp(options);
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(*model);
}

SubjectSpec ModelSpec(const GroundTruthModel* model) {
  SubjectSpec spec;
  spec.kind = SubjectKind::kModel;
  spec.model = model;
  return spec;
}

void ExpectSameLog(const PredicateLog& a, const PredicateLog& b) {
  EXPECT_EQ(a.failed, b.failed);
  ASSERT_EQ(a.observed.size(), b.observed.size());
  for (const auto& [id, obs] : a.observed) {
    ASSERT_TRUE(b.Has(id)) << "predicate " << id;
    EXPECT_EQ(b.observed.at(id).start, obs.start);
    EXPECT_EQ(b.observed.at(id).end, obs.end);
  }
}

TEST(RemoteTargetTest, TrialsMatchTheInProcessModelTarget) {
  auto model = MakeModel();
  auto runner = Runner::Start();
  ASSERT_TRUE(runner.ok()) << runner.status();

  auto remote = RemoteTarget::Create({(*runner)->endpoint()},
                                     ModelSpec(model.get()));
  ASSERT_TRUE(remote.ok()) << remote.status();
  ModelTarget local(model.get());

  const std::vector<std::vector<PredicateId>> interventions = {
      {}, {model->root_cause()}, {model->predicates().front()}};
  for (const auto& intervened : interventions) {
    auto remote_result = (*remote)->RunIntervened(intervened, 2);
    ASSERT_TRUE(remote_result.ok()) << remote_result.status();
    auto local_result = local.RunIntervened(intervened, 2);
    ASSERT_TRUE(local_result.ok());
    ASSERT_EQ(remote_result->logs.size(), local_result->logs.size());
    for (size_t i = 0; i < remote_result->logs.size(); ++i) {
      ExpectSameLog(local_result->logs[i], remote_result->logs[i]);
      EXPECT_TRUE(remote_result->logs[i].complete());
    }
  }
  EXPECT_EQ((*remote)->remote_catalog_size(), model->catalog().size());
  EXPECT_EQ((*remote)->executions(), 6);
  EXPECT_EQ((*remote)->health().crashed_trials, 0);
  EXPECT_EQ((*remote)->health().respawns, 0);
}

TEST(RemoteTargetTest, FlakySubjectsAreSeekablePositionallyOverTheWire) {
  auto model = MakeModel(23);
  auto runner = Runner::Start();
  ASSERT_TRUE(runner.ok()) << runner.status();

  SubjectSpec spec;
  spec.kind = SubjectKind::kFlakyModel;
  spec.model = model.get();
  spec.manifest_probability = 0.6;
  spec.flaky_seed = 77;
  auto remote = RemoteTarget::Create({(*runner)->endpoint()}, spec);
  ASSERT_TRUE(remote.ok()) << remote.status();
  FlakyModelTarget local(model.get(), 0.6, 77);

  // Same positional window twice, one target from trial 0, one sought
  // directly into the middle: flaky coin flips are a pure function of the
  // trial index even across the network boundary.
  auto serial = local.RunIntervened({model->root_cause()}, 8);
  ASSERT_TRUE(serial.ok());
  (*remote)->SeekTrial(4);
  auto window = (*remote)->RunIntervened({model->root_cause()}, 4);
  ASSERT_TRUE(window.ok()) << window.status();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(window->logs[i].failed, serial->logs[4 + i].failed)
        << "trial " << 4 + i;
  }
}

TEST(RemoteTargetTest, PingKeepsIdleConnectionsHonest) {
  auto model = MakeModel();
  auto runner = Runner::Start();
  ASSERT_TRUE(runner.ok()) << runner.status();
  auto remote = RemoteTarget::Create({(*runner)->endpoint()},
                                     ModelSpec(model.get()));
  ASSERT_TRUE(remote.ok()) << remote.status();

  EXPECT_TRUE((*remote)->Ping().ok());        // connects lazily, then PONGs
  auto result = (*remote)->RunIntervened({}, 1);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE((*remote)->Ping().ok());        // between trials too
}

TEST(RemoteTargetTest, KilledSessionChildBecomesCrashedTrialPlusReconnect) {
  auto model = MakeModel();
  auto runner = Runner::Start();
  ASSERT_TRUE(runner.ok()) << runner.status();
  auto remote = RemoteTarget::Create({(*runner)->endpoint()},
                                     ModelSpec(model.get()));
  ASSERT_TRUE(remote.ok()) << remote.status();

  auto first = (*remote)->RunIntervened({}, 1);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->logs[0].complete());

  // The machine loses its subjects but the runner daemon survives.
  (*runner)->KillSessions();

  auto second = (*remote)->RunIntervened({}, 1);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_EQ(second->logs.size(), 1u);
  EXPECT_TRUE(second->logs[0].failed);
  EXPECT_EQ(second->logs[0].outcome, TrialOutcome::kCrashed);
  EXPECT_FALSE(second->logs[0].complete());
  EXPECT_EQ((*remote)->health().crashed_trials, 1);
  EXPECT_EQ((*remote)->health().respawns, 1);

  // And the reconnected replica serves the next trial normally, with the
  // same bytes the in-process target produces at that position.
  auto third = (*remote)->RunIntervened({}, 1);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_TRUE(third->logs[0].complete());
  ModelTarget local(model.get());
  auto expected = local.RunIntervened({}, 1);
  ASSERT_TRUE(expected.ok());
  ExpectSameLog(expected->logs[0], third->logs[0]);
}

TEST(RemoteTargetTest, InjectedCrashesAreCountedDeterministically) {
  auto model = MakeModel();
  auto runner = Runner::Start();
  ASSERT_TRUE(runner.ok()) << runner.status();

  RemoteOptions options;
  options.inject_crash_period = 3;  // 1-based trials 3 and 6 die
  auto remote = RemoteTarget::Create({(*runner)->endpoint()},
                                     ModelSpec(model.get()), options);
  ASSERT_TRUE(remote.ok()) << remote.status();

  auto result = (*remote)->RunIntervened({}, 6);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->logs.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    const bool poisoned = (i + 1) % 3 == 0;
    EXPECT_EQ(result->logs[i].outcome == TrialOutcome::kCrashed, poisoned)
        << "trial " << i;
    if (poisoned) EXPECT_TRUE(result->logs[i].failed);
  }
  EXPECT_EQ((*remote)->health().crashed_trials, 2);
  EXPECT_EQ((*remote)->health().respawns, 2);
}

#if defined(POLLRDHUP)
TEST(RemoteTargetTest, HungSubjectIsReapedOnTheRunnerAfterTimeout) {
  auto model = MakeModel();
  auto runner = Runner::Start();
  ASSERT_TRUE(runner.ok()) << runner.status();

  RemoteOptions options;
  options.trial_deadline_ms = 300;
  options.inject_hang_period = 2;  // 1-based trial 2 hangs forever
  auto remote = RemoteTarget::Create({(*runner)->endpoint()},
                                     ModelSpec(model.get()), options);
  ASSERT_TRUE(remote.ok()) << remote.status();

  auto result = (*remote)->RunIntervened({}, 3);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->logs[1].outcome, TrialOutcome::kTimedOut);
  EXPECT_TRUE(result->logs[2].complete());
  EXPECT_EQ((*remote)->health().timed_out_trials, 1);

  // The hung session child must not leak on the runner: its watchdog sees
  // the engine's hangup and exits, leaving only the reconnected session.
  int live = -1;
  for (int i = 0; i < 100; ++i) {
    live = (*runner)->live_sessions();
    if (live <= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(live, 1);
}
#endif  // POLLRDHUP

TEST(RemoteTargetTest, DeadRunnerExhaustsConnectAttempts) {
  auto model = MakeModel();
  // Find a port that briefly existed, then close it: nothing listens there.
  Endpoint dead{"127.0.0.1", 1};
  {
    auto runner = Runner::Start();
    ASSERT_TRUE(runner.ok()) << runner.status();
    dead = (*runner)->endpoint();
    (*runner)->Stop();
  }
  RemoteOptions options;
  options.connect_attempts = 2;
  options.backoff_ms = 5;
  options.backoff_max_ms = 10;
  options.connect_timeout_ms = 2000;
  auto remote = RemoteTarget::Create({dead}, ModelSpec(model.get()), options);
  ASSERT_TRUE(remote.ok()) << remote.status();

  auto result = (*remote)->RunIntervened({}, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("attempts"), std::string::npos);
}

TEST(RemoteTargetTest, CatalogMismatchFailsTheHandshake) {
  auto model = MakeModel();
  auto runner = Runner::Start();
  ASSERT_TRUE(runner.ok()) << runner.status();
  RemoteOptions options;
  options.expected_catalog_size =
      static_cast<uint32_t>(model->catalog().size()) + 5;  // deliberately off
  auto remote = RemoteTarget::Create({(*runner)->endpoint()},
                                     ModelSpec(model.get()), options);
  ASSERT_TRUE(remote.ok()) << remote.status();
  auto result = (*remote)->RunIntervened({}, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("catalog"), std::string::npos);
}

TEST(RemoteTargetTest, ValidationRejectsBadOptions) {
  auto model = MakeModel();
  const SubjectSpec spec = ModelSpec(model.get());
  EXPECT_FALSE(RemoteTarget::Create({}, spec).ok());
  RemoteOptions negative_deadline;
  negative_deadline.trial_deadline_ms = -1;
  EXPECT_FALSE(
      RemoteTarget::Create({Endpoint{"h", 1}}, spec, negative_deadline).ok());
  RemoteOptions no_attempts;
  no_attempts.connect_attempts = 0;
  EXPECT_FALSE(
      RemoteTarget::Create({Endpoint{"h", 1}}, spec, no_attempts).ok());
}

TEST(FleetTargetTest, UnmeasuredClonesSpreadRoundRobinWithFailoverOrder) {
  auto model = MakeModel();
  auto runner_a = Runner::Start();
  auto runner_b = Runner::Start();
  ASSERT_TRUE(runner_a.ok() && runner_b.ok());

  auto fleet = FleetTarget::Create(
      {(*runner_a)->endpoint(), (*runner_b)->endpoint()},
      ModelSpec(model.get()));
  ASSERT_TRUE(fleet.ok()) << fleet.status();

  // Four clones dealt up front, the way a pool deals them -- before any
  // trial has produced a latency measurement, so the board's exploration
  // places them exactly round-robin: two per runner, each with the other
  // runner as failover. (Clones dealt AFTER trials ran are placed by
  // measured latency instead; tests/net/scheduler_fleet_test.cc covers
  // that regime.)
  std::vector<std::unique_ptr<ReplicableTarget>> replicas;
  for (int i = 0; i < 4; ++i) {
    auto clone = (*fleet)->Clone();
    ASSERT_TRUE(clone.ok()) << clone.status();
    replicas.push_back(std::move(*clone));
  }
  for (auto& replica : replicas) {
    auto result = replica->RunIntervened({}, 1);
    ASSERT_TRUE(result.ok()) << result.status();
  }
  EXPECT_EQ((*runner_a)->sessions_started(), 2);
  EXPECT_EQ((*runner_b)->sessions_started(), 2);
}

TEST(FleetTargetTest, ReplicaFailsOverWhenItsRunnerDies) {
  auto model = MakeModel();
  auto runner_a = Runner::Start();
  auto runner_b = Runner::Start();
  ASSERT_TRUE(runner_a.ok() && runner_b.ok());

  RemoteOptions options;
  options.connect_attempts = 3;
  options.backoff_ms = 5;
  options.backoff_max_ms = 20;
  auto fleet = FleetTarget::Create(
      {(*runner_a)->endpoint(), (*runner_b)->endpoint()},
      ModelSpec(model.get()), options);
  ASSERT_TRUE(fleet.ok()) << fleet.status();

  // The fleet's own replica binds to runner A...
  auto first = (*fleet)->RunIntervened({}, 1);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ((*runner_a)->sessions_started(), 1);

  // ...which then drops off the network entirely.
  (*runner_a)->Stop();

  // The in-flight connection dies (crashed trial), and the reconnect fails
  // over to runner B -- the session degrades instead of failing.
  auto second = (*fleet)->RunIntervened({}, 1);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->logs[0].outcome, TrialOutcome::kCrashed);
  auto third = (*fleet)->RunIntervened({}, 1);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_TRUE(third->logs[0].complete());
  EXPECT_GE((*runner_b)->sessions_started(), 1);
  EXPECT_EQ((*fleet)->health().crashed_trials, 1);
  EXPECT_GE((*fleet)->health().respawns, 1);
}

#else  // !AID_NET_SUPPORTED

TEST(RemoteTargetTest, UnsupportedPlatformReportsUnimplemented) {
  SubjectSpec spec;
  EXPECT_EQ(RemoteTarget::Create({Endpoint{"h", 1}}, spec).status().code(),
            StatusCode::kUnimplemented);
}

#endif  // AID_NET_SUPPORTED

}  // namespace
}  // namespace aid
