// Tests of the socket frame transport: SocketChannel framing over a real
// socketpair (round trips, EOF/truncation, oversized-length rejection,
// deadlines), the engine-side handshake against a misbehaving peer
// (version mismatch), the v2 PING/PONG keepalive, endpoint parsing, and
// EINTR robustness of frame I/O under a signal storm.

#include "net/channel.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "net/socket.h"
#include "proc/client.h"
#include "proc/wire.h"

#if AID_NET_SUPPORTED
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace aid {
namespace {

// --- endpoint parsing (platform-independent) ------------------------------

TEST(EndpointTest, ParsesHostColonPort) {
  auto endpoint = ParseEndpoint("runner7.example:7601");
  ASSERT_TRUE(endpoint.ok()) << endpoint.status();
  EXPECT_EQ(endpoint->host, "runner7.example");
  EXPECT_EQ(endpoint->port, 7601);
  EXPECT_EQ(endpoint->ToString(), "runner7.example:7601");
}

TEST(EndpointTest, RejectsMalformedEndpoints) {
  for (const char* bad : {"", "nohost", ":7601", "host:", "host:abc",
                          "host:0", "host:65536", "host:70000",
                          "::1:7601"}) {
    EXPECT_FALSE(ParseEndpoint(bad).ok()) << bad;
  }
}

TEST(EndpointTest, ParseEndpointsFailsOnFirstBadEntry) {
  auto good = ParseEndpoints({"a:1", "b:2"});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->size(), 2u);
  EXPECT_FALSE(ParseEndpoints({"a:1", "broken"}).ok());
}

#if AID_NET_SUPPORTED

/// A connected AF_UNIX stream pair: the cheapest honest socket transport
/// (same read/write/poll semantics the TCP path sees).
class SocketPair {
 public:
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0); }
  ~SocketPair() {
    CloseA();
    CloseB();
  }
  int a() const { return fds_[0]; }
  int b() const { return fds_[1]; }
  /// Detaches the fd for handoff to an owning SocketChannel.
  int ReleaseA() { return std::exchange(fds_[0], -1); }
  int ReleaseB() { return std::exchange(fds_[1], -1); }
  void CloseA() {
    if (fds_[0] >= 0) ::close(fds_[0]);
    fds_[0] = -1;
  }
  void CloseB() {
    if (fds_[1] >= 0) ::close(fds_[1]);
    fds_[1] = -1;
  }

 private:
  int fds_[2] = {-1, -1};
};

TEST(SocketChannelTest, FramesRoundTripOverASocketPair) {
  SocketPair pair;
  SocketChannel engine(pair.ReleaseA());
  SocketChannel host(pair.ReleaseB());

  RunTrialMsg request;
  request.trial_index = 42;
  request.intervened = {3, 1, 4, 1, 5};
  ASSERT_TRUE(
      engine.Write(ProcMsgType::kRunTrial, EncodeRunTrial(request)).ok());

  auto frame = host.Read();
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, ProcMsgType::kRunTrial);
  auto decoded = DecodeRunTrial(frame->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->trial_index, 42u);
  EXPECT_EQ(decoded->intervened, request.intervened);

  VerdictMsg verdict;
  verdict.failed = true;
  ASSERT_TRUE(host.Write(ProcMsgType::kVerdict, EncodeVerdict(verdict)).ok());
  auto answer = engine.Read();
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->type, ProcMsgType::kVerdict);
}

TEST(SocketChannelTest, TruncationMidFrameSurfacesAsAborted) {
  SocketPair pair;
  // A length prefix promising 100 bytes, then the peer dies after 3.
  WireWriter writer;
  writer.U32(100);
  writer.U8(static_cast<uint8_t>(ProcMsgType::kVerdict));
  writer.Raw("ab");
  ASSERT_EQ(::write(pair.a(), writer.buffer().data(), writer.buffer().size()),
            static_cast<ssize_t>(writer.buffer().size()));
  pair.CloseA();

  SocketChannel channel(pair.ReleaseB());
  auto frame = channel.Read();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kAborted);
}

TEST(SocketChannelTest, CleanEofSurfacesAsAborted) {
  SocketPair pair;
  pair.CloseA();
  SocketChannel channel(pair.ReleaseB());
  auto frame = channel.Read();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kAborted);
}

TEST(SocketChannelTest, OversizedLengthIsRejectedBeforeAllocation) {
  SocketPair pair;
  WireWriter writer;
  writer.U32(kProcMaxFramePayload + 2);  // beyond the hard frame bound
  ASSERT_EQ(::write(pair.a(), writer.buffer().data(), writer.buffer().size()),
            static_cast<ssize_t>(writer.buffer().size()));

  SocketChannel channel(pair.ReleaseB());
  auto frame = channel.Read();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);

  // And the writing side refuses to produce such a frame in the first
  // place.
  SocketChannel writer_channel(pair.ReleaseA());
  const std::string big(kProcMaxFramePayload + 1, 'x');
  const Status status = writer_channel.Write(ProcMsgType::kSpec, big);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SocketChannelTest, ReadDeadlineExpiresOnASilentPeer) {
  SocketPair pair;
  SocketChannel channel(pair.ReleaseB());
  const auto start = std::chrono::steady_clock::now();
  auto frame = channel.Read(/*deadline_ms=*/50);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
      45);
}

TEST(SocketChannelTest, WriteDeadlineExpiresWhenThePeerStopsDraining) {
  SocketPair pair;
  SocketChannel channel(pair.ReleaseA());
  // Nobody reads: a payload far beyond any socket buffer must hit the
  // deadline instead of wedging the writer forever.
  const std::string big(8 << 20, 'x');
  const Status status =
      channel.Write(ProcMsgType::kSpec, big, /*deadline_ms=*/100);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(SocketChannelTest, HandshakeVersionMismatchIsFailedPrecondition) {
  SocketPair pair;
  SocketChannel engine(pair.ReleaseA());
  SocketChannel host(pair.ReleaseB());

  // The peer speaks a protocol from the future.
  HelloMsg hello;
  hello.version = kProcProtocolVersion + 7;
  ASSERT_TRUE(host.Write(ProcMsgType::kHello, EncodeHello(hello)).ok());

  SubjectHandshake options;
  options.timeout_ms = 2000;
  options.peer = "runner test:1";
  auto catalog = HandshakeSubject(engine, "irrelevant-spec", options);
  ASSERT_FALSE(catalog.ok());
  EXPECT_EQ(catalog.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(catalog.status().message().find("version"), std::string::npos);
}

TEST(SocketChannelTest, HandshakeRejectsWrongMagic) {
  SocketPair pair;
  SocketChannel engine(pair.ReleaseA());
  SocketChannel host(pair.ReleaseB());
  HelloMsg hello;
  hello.magic = 0x0BADF00D;
  ASSERT_TRUE(host.Write(ProcMsgType::kHello, EncodeHello(hello)).ok());
  SubjectHandshake options;
  options.timeout_ms = 2000;
  auto catalog = HandshakeSubject(engine, "spec", options);
  ASSERT_FALSE(catalog.ok());
  EXPECT_EQ(catalog.status().code(), StatusCode::kInvalidArgument);
}

TEST(SocketChannelTest, PingPongRoundTripsToken) {
  SocketPair pair;
  SocketChannel engine(pair.ReleaseA());
  SocketChannel host(pair.ReleaseB());

  std::thread peer([&host]() {
    auto frame = host.Read(2000);
    ASSERT_TRUE(frame.ok()) << frame.status();
    ASSERT_EQ(frame->type, ProcMsgType::kPing);
    auto ping = DecodePing(frame->payload);
    ASSERT_TRUE(ping.ok());
    EXPECT_EQ(ping->token, 99u);
    ASSERT_TRUE(host.Write(ProcMsgType::kPong, EncodePing(*ping)).ok());
  });
  const Status status = PingPeer(engine, /*token=*/99, /*timeout_ms=*/2000);
  peer.join();
  EXPECT_TRUE(status.ok()) << status;
}

TEST(SocketChannelTest, PingTimesOutOnASilentPeer) {
  SocketPair pair;
  SocketChannel engine(pair.ReleaseA());
  const Status status = PingPeer(engine, /*token=*/1, /*timeout_ms=*/50);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

// --- EINTR robustness -----------------------------------------------------

void NoopHandler(int) {}

/// A frame read bombarded with signals (handler installed WITHOUT
/// SA_RESTART, so every blocking syscall is interruptible) while the bytes
/// trickle in must still deliver the frame -- the wire primitives retry
/// EINTR instead of surfacing a spurious Aborted/Internal.
TEST(SocketChannelTest, SignalStormDoesNotAbortFrameIo) {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = NoopHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction previous;
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  SocketPair pair;
  SocketChannel reader(pair.ReleaseB());

  VerdictMsg verdict;
  verdict.failed = true;
  WireWriter writer;
  const std::string payload = EncodeVerdict(verdict);
  writer.U32(static_cast<uint32_t>(payload.size()) + 1);
  writer.U8(static_cast<uint8_t>(ProcMsgType::kVerdict));
  writer.Raw(payload);
  const std::string bytes = writer.Release();

  const pthread_t reader_thread = ::pthread_self();
  std::atomic<bool> done{false};
  std::thread storm([&]() {
    while (!done.load()) {
      ::pthread_kill(reader_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::thread trickle([&]() {
    for (char c : bytes) {
      ASSERT_EQ(::write(pair.a(), &c, 1), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  auto frame = reader.Read(/*deadline_ms=*/10000);
  done.store(true);
  storm.join();
  trickle.join();
  ::sigaction(SIGUSR1, &previous, nullptr);

  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, ProcMsgType::kVerdict);
  auto decoded = DecodeVerdict(frame->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->failed);
}

#else  // !AID_NET_SUPPORTED

TEST(SocketChannelTest, UnsupportedPlatformReportsUnimplemented) {
  EXPECT_EQ(ConnectTo(Endpoint{"localhost", 1}, 10).status().code(),
            StatusCode::kUnimplemented);
}

#endif  // AID_NET_SUPPORTED

}  // namespace
}  // namespace aid
