// Tests of the runner's admission cap (RunnerOptions::max_sessions,
// `aid_runner --max-sessions N`): at the cap, a new connection gets a
// structured FAILED_PRECONDITION ERROR frame from the daemon itself --
// never an unbounded fork -- and a slot freed by a finished session admits
// the next engine normally.

#include "net/runner.h"

#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "net/channel.h"
#include "net/remote_target.h"
#include "net/socket.h"
#include "proc/client.h"
#include "proc/subject_spec.h"
#include "synth/model.h"

namespace aid {
namespace {

#if AID_NET_SUPPORTED

std::unique_ptr<GroundTruthModel> ChainModel() {
  auto model = std::make_unique<GroundTruthModel>();
  model->AddFailure();
  std::vector<PredicateId> chain;
  for (int i = 0; i < 4; ++i) chain.push_back(model->AddPredicate(i));
  for (int i = 0; i + 1 < 4; ++i) {
    model->AddTemporalEdge(chain[static_cast<size_t>(i)],
                           chain[static_cast<size_t>(i) + 1]);
  }
  model->SetCausalChain({chain[2]});
  return model;
}

SubjectSpec ModelSpec(const GroundTruthModel* model) {
  SubjectSpec spec;
  spec.kind = SubjectKind::kModel;
  spec.model = model;
  return spec;
}

/// Dials the runner and performs the engine handshake; the admission
/// verdict is whatever HandshakeSubject returns (READY -> OK with the
/// catalog size, ERROR frame -> its carried Status).
Result<uint32_t> TryHandshake(const Endpoint& endpoint,
                              const SubjectSpec& spec) {
  AID_ASSIGN_OR_RETURN(std::string spec_bytes, EncodeSubjectSpec(spec));
  AID_ASSIGN_OR_RETURN(int fd, ConnectTo(endpoint, /*timeout_ms=*/5000));
  SocketChannel channel(fd);
  SubjectHandshake handshake;
  handshake.peer = "capped runner";
  return HandshakeSubject(channel, spec_bytes, handshake);
}

TEST(RunnerAdmissionTest, ConnectionPastTheCapGetsAStructuredError) {
  auto model = ChainModel();
  RunnerOptions options;
  options.max_sessions = 1;
  options.accept_poll_ms = 20;
  auto runner = Runner::Start(options);
  ASSERT_TRUE(runner.ok()) << runner.status();

  // First engine occupies the only slot (the connection stays open).
  auto occupant = RemoteTarget::Create({(*runner)->endpoint()},
                                       ModelSpec(model.get()));
  ASSERT_TRUE(occupant.ok()) << occupant.status();
  auto trial = (*occupant)->RunIntervened({}, 1);
  ASSERT_TRUE(trial.ok()) << trial.status();
  ASSERT_EQ((*runner)->live_sessions(), 1);

  // Second engine is turned away by the daemon itself: a clean
  // FAILED_PRECONDITION naming the cap, not a dropped connection.
  auto rejected = TryHandshake((*runner)->endpoint(), ModelSpec(model.get()));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.status().message().find("session cap"),
            std::string::npos)
      << rejected.status();
  EXPECT_NE(rejected.status().message().find("--max-sessions 1"),
            std::string::npos)
      << rejected.status();

  // The rejection forked nothing: still exactly one live session child.
  EXPECT_EQ((*runner)->live_sessions(), 1);
}

TEST(RunnerAdmissionTest, FreedSlotAdmitsTheNextEngine) {
  auto model = ChainModel();
  RunnerOptions options;
  options.max_sessions = 1;
  options.accept_poll_ms = 20;
  auto runner = Runner::Start(options);
  ASSERT_TRUE(runner.ok()) << runner.status();

  {
    auto occupant = RemoteTarget::Create({(*runner)->endpoint()},
                                         ModelSpec(model.get()));
    ASSERT_TRUE(occupant.ok()) << occupant.status();
    ASSERT_TRUE((*occupant)->RunIntervened({}, 1).ok());
    auto rejected =
        TryHandshake((*runner)->endpoint(), ModelSpec(model.get()));
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  }  // occupant hangs up; its session child exits

  // The daemon reaps the finished child on its accept tick, freeing the
  // slot; the retry the error message promises then succeeds.
  Result<uint32_t> admitted = Status::Internal("never tried");
  for (int attempt = 0; attempt < 100; ++attempt) {
    admitted = TryHandshake((*runner)->endpoint(), ModelSpec(model.get()));
    if (admitted.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(admitted.ok()) << admitted.status();
  EXPECT_EQ(*admitted, model->catalog().size());
}

TEST(RunnerAdmissionTest, UnlimitedByDefault) {
  auto model = ChainModel();
  auto runner = Runner::Start();  // max_sessions = 0
  ASSERT_TRUE(runner.ok()) << runner.status();

  std::vector<std::unique_ptr<RemoteTarget>> engines;
  for (int i = 0; i < 3; ++i) {
    auto remote = RemoteTarget::Create({(*runner)->endpoint()},
                                       ModelSpec(model.get()));
    ASSERT_TRUE(remote.ok()) << remote.status();
    ASSERT_TRUE((*remote)->RunIntervened({}, 1).ok());
    engines.push_back(std::move(*remote));
  }
  EXPECT_EQ((*runner)->live_sessions(), 3);
}

#else  // !AID_NET_SUPPORTED

TEST(RunnerAdmissionTest, UnsupportedPlatformReportsUnimplemented) {
  RunnerOptions options;
  options.max_sessions = 1;
  EXPECT_EQ(Runner::Start(options).status().code(),
            StatusCode::kUnimplemented);
}

#endif  // AID_NET_SUPPORTED

}  // namespace
}  // namespace aid
