// Tests of the public aid::Session API: parity with direct engine use for
// all four presets, the target factory registry, the builder contract, the
// observer callbacks, and batched dispatch.

#include "api/session.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "casestudies/case_study.h"
#include "casestudies/pipeline.h"
#include "synth/generator.h"
#include "synth/model.h"

// The parity tests intentionally exercise the deprecated RunPipeline shim.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace aid {
namespace {

std::unique_ptr<GroundTruthModel> MakeModel(int max_threads = 12,
                                            uint64_t seed = 7) {
  SyntheticAppOptions options;
  options.max_threads = max_threads;
  options.seed = seed;
  auto model = GenerateSyntheticApp(options);
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(*model);
}

// --- preset parity: Session vs. direct CausalPathDiscovery ----------------

class SessionPresetTest : public ::testing::TestWithParam<EnginePreset> {};

TEST_P(SessionPresetTest, MatchesDirectEngineUseOnModelTarget) {
  const EnginePreset preset = GetParam();
  std::unique_ptr<GroundTruthModel> model = MakeModel();

  // Legacy path: hand-built target, DAG, and engine.
  auto dag = model->BuildAcDag();
  ASSERT_TRUE(dag.ok()) << dag.status();
  ModelTarget target(model.get());
  CausalPathDiscovery discovery(&*dag, &target, MakeEngineOptions(preset));
  auto legacy = discovery.Run();
  ASSERT_TRUE(legacy.ok()) << legacy.status();

  // New path: everything through the Session facade.
  auto session = SessionBuilder()
                     .WithModel(model.get())
                     .WithEngine(preset)
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(report->discovery.causal_path, legacy->causal_path);
  EXPECT_EQ(report->discovery.spurious, legacy->spurious);
  EXPECT_EQ(report->discovery.rounds, legacy->rounds);
  EXPECT_EQ(report->discovery.executions, legacy->executions);
  EXPECT_EQ(report->discovery.path_is_chain, legacy->path_is_chain);
  EXPECT_EQ(report->acdag_nodes, static_cast<int>(dag->size()));

  // The discovered path is the ground truth.
  std::vector<PredicateId> truth = model->causal_chain();
  truth.push_back(model->failure());
  std::sort(truth.begin(), truth.end());
  std::vector<PredicateId> got = report->discovery.causal_path;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, truth);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, SessionPresetTest,
                         ::testing::Values(EnginePreset::kAid,
                                           EnginePreset::kAidNoPredicatePruning,
                                           EnginePreset::kAidNoPruning,
                                           EnginePreset::kTagt),
                         [](const auto& info) {
                           std::string name(EnginePresetName(info.param));
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(SessionTest, RunWithEngineOptionsReusesTheDag) {
  std::unique_ptr<GroundTruthModel> model = MakeModel();
  auto session = SessionBuilder().WithModel(model.get()).Build();
  ASSERT_TRUE(session.ok()) << session.status();

  auto aid = session->Run(MakeEngineOptions(EnginePreset::kAid));
  ASSERT_TRUE(aid.ok()) << aid.status();
  const AcDag* dag_after_first = session->dag();
  ASSERT_NE(dag_after_first, nullptr);

  auto tagt = session->Run(MakeEngineOptions(EnginePreset::kTagt));
  ASSERT_TRUE(tagt.ok()) << tagt.status();
  EXPECT_EQ(session->dag(), dag_after_first);

  std::vector<PredicateId> a = aid->discovery.causal_path;
  std::vector<PredicateId> b = tagt->discovery.causal_path;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_LE(aid->discovery.rounds, tagt->discovery.rounds);
}

// --- parity with the deprecated case-study pipeline -----------------------

TEST(SessionTest, MatchesLegacyRunPipelineOnCaseStudy) {
  auto study = MakeNpgsqlRace();
  ASSERT_TRUE(study.ok()) << study.status();

  PipelineConfig config;
  config.aid.trials_per_intervention = 3;
  config.tagt.trials_per_intervention = 3;
  auto legacy = RunPipeline(*study, config);
  ASSERT_TRUE(legacy.ok()) << legacy.status();

  auto session = SessionBuilder()
                     .WithProgram(&study->program, study->target_options)
                     .WithEngine(EnginePreset::kAid)
                     .WithTrials(3)
                     .WithTagtBaselineOptions(config.tagt)
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(report->sd_predicates, legacy->fully_discriminative);
  EXPECT_EQ(report->acdag_nodes, legacy->acdag_nodes);
  EXPECT_EQ(report->discovery.causal_path, legacy->aid.causal_path);
  EXPECT_EQ(report->discovery.rounds, legacy->aid.rounds);
  EXPECT_EQ(report->tagt_baseline->causal_path, legacy->tagt.causal_path);
  EXPECT_EQ(report->root_cause, legacy->root_cause);
  EXPECT_EQ(report->causal_path, legacy->causal_path);
  EXPECT_NE(report->root_cause.find(study->expected_root_substring),
            std::string::npos)
      << report->root_cause;
}

// --- target factory -------------------------------------------------------

TEST(TargetFactoryTest, BuiltinBackendsAreRegistered) {
  for (const char* name :
       {"vm", "model", "flaky-model", "case", "case:npgsql", "case:kafka",
        "case:cosmosdb", "case:network", "case:buildandtest",
        "case:healthtelemetry"}) {
    EXPECT_TRUE(TargetFactory::IsRegistered(name)) << name;
  }
  const std::vector<std::string> names = TargetFactory::RegisteredNames();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(TargetFactoryTest, UnknownBackendIsNotFound) {
  auto target = TargetFactory::Create("no-such-backend", {});
  ASSERT_FALSE(target.ok());
  EXPECT_EQ(target.status().code(), StatusCode::kNotFound);
}

TEST(TargetFactoryTest, UnknownCaseStudyIsNotFound) {
  TargetConfig config;
  config.case_study = "no-such-case";
  auto target = TargetFactory::Create("case", config);
  ASSERT_FALSE(target.ok());
  EXPECT_EQ(target.status().code(), StatusCode::kNotFound);
}

TEST(TargetFactoryTest, MissingInputsAreInvalidArgument) {
  EXPECT_EQ(TargetFactory::Create("vm", {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TargetFactory::Create("model", {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TargetFactoryTest, CustomBackendPlugsIntoSession) {
  // The registry is process-global and creators are never unregistered, so
  // the captured model must outlive any later lookup of "test-custom".
  static const std::unique_ptr<GroundTruthModel> model = MakeModel(8, 3);
  const GroundTruthModel* raw = model.get();
  TargetFactory::Register(
      "test-custom", [raw](const TargetConfig&) {
        return MakeModelSessionTarget(raw, 1.0, 1, "test-custom");
      });
  ASSERT_TRUE(TargetFactory::IsRegistered("test-custom"));

  auto session = SessionBuilder().WithTarget("test-custom", {}).Build();
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_EQ(session->target().name(), "test-custom");
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->has_root_cause());
}

TEST(TargetFactoryTest, AdapterTargetDrivesSessionOverBorrowedPieces) {
  std::unique_ptr<GroundTruthModel> model = MakeModel(10, 5);
  auto dag = model->BuildAcDag();
  ASSERT_TRUE(dag.ok()) << dag.status();
  ModelTarget target(model.get());

  auto session = SessionBuilder()
                     .WithTarget(MakeAdapterSessionTarget(
                         &target, &*dag, &model->catalog()))
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->has_root_cause());
  EXPECT_EQ(report->discovery.causal_path.back(), model->failure());
  // The borrowed intervention target did the work, and the session borrowed
  // the prebuilt DAG instead of copying it.
  EXPECT_GT(target.executions(), 0);
  EXPECT_EQ(session->dag(), &*dag);
}

// --- builder contract -----------------------------------------------------

TEST(SessionBuilderTest, BuildWithoutTargetFails) {
  auto session = SessionBuilder().WithEngine(EnginePreset::kAid).Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionBuilderTest, DeferredKnobsOverrideEngineOptionOrder) {
  std::unique_ptr<GroundTruthModel> model = MakeModel(6, 2);
  // WithTrials / WithSeed land even though WithEngine comes later.
  auto session = SessionBuilder()
                     .WithModel(model.get())
                     .WithTrials(4)
                     .WithSeed(99)
                     .WithEngine(EnginePreset::kTagt)
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_EQ(session->options().engine.trials_per_intervention, 4);
  EXPECT_EQ(session->options().engine.seed, 99u);
  EXPECT_FALSE(session->options().engine.topological_order);
}

TEST(SessionBuilderTest, RejectsNonPositiveTrials) {
  std::unique_ptr<GroundTruthModel> model = MakeModel(6, 2);
  for (int trials : {0, -1, -100}) {
    auto session = SessionBuilder()
                       .WithModel(model.get())
                       .WithTrials(trials)
                       .Build();
    ASSERT_FALSE(session.ok()) << "trials=" << trials;
    EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(session.status().message().find(std::to_string(trials)),
              std::string::npos)
        << session.status();
  }
}

TEST(SessionBuilderTest, RejectsAbsurdTrials) {
  std::unique_ptr<GroundTruthModel> model = MakeModel(6, 2);
  auto session = SessionBuilder()
                     .WithModel(model.get())
                     .WithTrials(kMaxTrialsPerIntervention + 1)
                     .Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionBuilderTest, RejectsInvalidTrialsFromEngineOptions) {
  // The validation guards the effective engine options, not just the
  // WithTrials knob.
  std::unique_ptr<GroundTruthModel> model = MakeModel(6, 2);
  EngineOptions options;
  options.trials_per_intervention = 0;
  auto session = SessionBuilder()
                     .WithModel(model.get())
                     .WithEngineOptions(options)
                     .Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionBuilderTest, RejectsInvalidBudgetOptions) {
  std::unique_ptr<GroundTruthModel> model = MakeModel(6, 2);
  BudgetOptions budget;
  budget.enabled = true;
  budget.error_tolerance = 0.75;  // must be in (0, 0.5)
  auto session = SessionBuilder()
                     .WithModel(model.get())
                     .WithAdaptiveBudget(budget)
                     .Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionBuilderTest, AdaptiveBudgetLandsOnTheMainEngineOnly) {
  std::unique_ptr<GroundTruthModel> model = MakeModel(6, 2);
  auto session = SessionBuilder()
                     .WithModel(model.get())
                     .WithAdaptiveBudget()
                     .WithTagtBaseline()
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_TRUE(session->options().engine.budget.enabled);
  // The baseline stays fixed-trial so execution comparisons stay honest.
  EXPECT_FALSE(session->options().tagt_baseline.budget.enabled);
}

// --- observer -------------------------------------------------------------

class RecordingObserver : public Observer {
 public:
  void OnPhaseChanged(SessionPhase phase) override {
    phases.push_back(phase);
  }
  void OnRoundStarted(uint64_t round, const std::vector<PredicateId>&) override {
    started.push_back(round);
  }
  void OnRoundFinished(const ObservedRound& round) override {
    finished.push_back(round.round);
  }
  void OnPredicateDecided(PredicateId id, bool causal) override {
    (causal ? causal_ids : spurious_ids).push_back(id);
  }

  std::vector<SessionPhase> phases;
  std::vector<uint64_t> started;
  std::vector<uint64_t> finished;
  std::vector<PredicateId> causal_ids;
  std::vector<PredicateId> spurious_ids;
};

TEST(SessionObserverTest, ReportsPhasesRoundsAndDecisions) {
  std::unique_ptr<GroundTruthModel> model = MakeModel();
  RecordingObserver observer;
  auto session = SessionBuilder()
                     .WithModel(model.get())
                     .WithEngine(EnginePreset::kAid)
                     .WithObserver(&observer)
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  // Phases arrive in pipeline order (observation is skipped: the model
  // backend has no observation phase inside Build, but the phase change is
  // still announced before target creation).
  const std::vector<SessionPhase> expected_phases = {
      SessionPhase::kObservation,        SessionPhase::kStatisticalDebugging,
      SessionPhase::kAcDagConstruction,  SessionPhase::kBranchPruning,
      SessionPhase::kGiwp,               SessionPhase::kFinished,
  };
  EXPECT_EQ(observer.phases, expected_phases);

  // One start + one finish per round, numbered 1..rounds.
  ASSERT_EQ(static_cast<int>(observer.finished.size()),
            report->discovery.rounds);
  EXPECT_EQ(observer.started, observer.finished);
  for (size_t i = 0; i < observer.finished.size(); ++i) {
    EXPECT_EQ(observer.finished[i], static_cast<int>(i) + 1);
  }

  // Decisions match the report exactly.
  std::vector<PredicateId> causal = observer.causal_ids;
  std::sort(causal.begin(), causal.end());
  causal.erase(std::unique(causal.begin(), causal.end()), causal.end());
  std::vector<PredicateId> expected_causal = report->discovery.causal_path;
  expected_causal.pop_back();  // F is never "decided"
  std::sort(expected_causal.begin(), expected_causal.end());
  EXPECT_EQ(causal, expected_causal);

  std::vector<PredicateId> spurious = observer.spurious_ids;
  std::sort(spurious.begin(), spurious.end());
  spurious.erase(std::unique(spurious.begin(), spurious.end()),
                 spurious.end());
  EXPECT_EQ(spurious, report->discovery.spurious);
}

// --- batched dispatch -----------------------------------------------------

TEST(SessionBatchedDispatchTest, LinearScanDecisionsMatchSerialDispatch) {
  std::unique_ptr<GroundTruthModel> model = MakeModel(16, 11);

  auto session = SessionBuilder().WithModel(model.get()).Build();
  ASSERT_TRUE(session.ok()) << session.status();

  EngineOptions serial = EngineOptions::Linear();
  auto serial_report = session->Run(serial);
  ASSERT_TRUE(serial_report.ok()) << serial_report.status();

  EngineOptions batched = EngineOptions::Linear();
  batched.batched_dispatch = true;
  auto batched_report = session->Run(batched);
  ASSERT_TRUE(batched_report.ok()) << batched_report.status();

  EXPECT_EQ(batched_report->discovery.causal_path,
            serial_report->discovery.causal_path);
  EXPECT_EQ(batched_report->discovery.spurious,
            serial_report->discovery.spurious);
  // Batching may execute interventions pruning would have skipped, never
  // fewer.
  EXPECT_GE(batched_report->discovery.executions,
            serial_report->discovery.rounds);
}

TEST(SessionBatchedDispatchTest, BuilderKnobEnablesBatching) {
  std::unique_ptr<GroundTruthModel> model = MakeModel(6, 2);
  auto session = SessionBuilder()
                     .WithModel(model.get())
                     .WithEngineOptions(EngineOptions::Linear())
                     .WithBatchedDispatch()
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_TRUE(session->options().engine.batched_dispatch);
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->has_root_cause());
}

// --- flaky backend through the facade -------------------------------------

TEST(SessionTest, FlakyModelBackendStillFindsTheRootCause) {
  std::unique_ptr<GroundTruthModel> model = MakeModel(8, 13);
  auto session = SessionBuilder()
                     .WithFlakyModel(model.get(), 0.8, /*seed=*/5)
                     .WithTrials(10)
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->has_root_cause());
  EXPECT_EQ(report->discovery.root_cause(), model->root_cause());
}

}  // namespace
}  // namespace aid
