// Tests of parallel execution through the public aid::Session facade:
// WithParallelism wiring for every built-in backend kind, determinism of
// the resulting reports, the builder's validation contract, and serialized
// observer delivery under parallel dispatch.

#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "exec/parallel_target.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

std::unique_ptr<GroundTruthModel> MakeModel(int max_threads = 12,
                                            uint64_t seed = 7) {
  SyntheticAppOptions options;
  options.max_threads = max_threads;
  options.seed = seed;
  auto model = GenerateSyntheticApp(options);
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(*model);
}

void ExpectSameDiscovery(const DiscoveryReport& a, const DiscoveryReport& b) {
  EXPECT_EQ(a.causal_path, b.causal_path);
  EXPECT_EQ(a.spurious, b.spurious);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.speculative_executions, b.speculative_executions);
}

// --- determinism across presets through the facade ------------------------

class SessionParallelPresetTest
    : public ::testing::TestWithParam<EnginePreset> {};

TEST_P(SessionParallelPresetTest, ParallelismFourMatchesSerial) {
  const EnginePreset preset = GetParam();
  std::unique_ptr<GroundTruthModel> model = MakeModel();

  auto run_with = [&](int parallelism) {
    SessionBuilder builder;
    builder.WithModel(model.get())
        .WithEngine(preset)
        .WithTrials(2)
        .WithParallelism(parallelism);
    auto session = builder.Build();
    EXPECT_TRUE(session.ok()) << session.status();
    auto report = session->Run();
    EXPECT_TRUE(report.ok()) << report.status();
    return std::move(*report);
  };

  SessionReport serial = run_with(1);
  SessionReport parallel = run_with(4);
  ExpectSameDiscovery(parallel.discovery, serial.discovery);

  std::vector<PredicateId> truth = model->causal_chain();
  truth.push_back(model->failure());
  EXPECT_EQ(parallel.discovery.causal_path, truth);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, SessionParallelPresetTest,
                         ::testing::Values(EnginePreset::kAid,
                                           EnginePreset::kAidNoPredicatePruning,
                                           EnginePreset::kAidNoPruning,
                                           EnginePreset::kTagt));

// --- per-backend wiring ---------------------------------------------------

TEST(SessionParallelTest, FlakyBackendIsBitIdenticalAcrossParallelism) {
  std::unique_ptr<GroundTruthModel> model = MakeModel(8, 13);
  auto run_with = [&](int parallelism) {
    SessionBuilder builder;
    builder.WithFlakyModel(model.get(), 0.8, /*seed=*/5)
        .WithTrials(10)
        .WithParallelism(parallelism);
    auto session = builder.Build();
    EXPECT_TRUE(session.ok()) << session.status();
    auto report = session->Run();
    EXPECT_TRUE(report.ok()) << report.status();
    return std::move(*report);
  };

  SessionReport serial = run_with(1);
  SessionReport parallel = run_with(4);
  ExpectSameDiscovery(parallel.discovery, serial.discovery);
  ASSERT_TRUE(parallel.has_root_cause());
  EXPECT_EQ(parallel.discovery.root_cause(), model->root_cause());
}

TEST(SessionParallelTest, CaseStudyBackendMatchesSerial) {
  auto run_with = [&](int parallelism) {
    SessionBuilder builder;
    builder.WithCaseStudy("kafka")
        .WithTrials(3)
        .WithParallelism(parallelism);
    auto session = builder.Build();
    EXPECT_TRUE(session.ok()) << session.status();
    auto report = session->Run();
    EXPECT_TRUE(report.ok()) << report.status();
    return std::move(*report);
  };

  SessionReport serial = run_with(1);
  SessionReport parallel = run_with(4);
  ExpectSameDiscovery(parallel.discovery, serial.discovery);
  EXPECT_TRUE(parallel.has_root_cause());
}

TEST(SessionParallelTest, LinearPresetReportsSpeculativeExecutions) {
  std::unique_ptr<GroundTruthModel> model = MakeModel();
  SessionBuilder builder;
  builder.WithModel(model.get())
      .WithEngine(EnginePreset::kLinear)
      .WithTrials(2)
      .WithParallelism(4);
  auto session = builder.Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();
  // parallelism > 1 implies batched linear-scan dispatch, so the pruning
  // wins of the serial scan turn into speculative executions.
  EXPECT_GT(report->discovery.speculative_executions, 0);
  EXPECT_EQ(report->discovery.executions,
            report->discovery.rounds * 2 +
                report->discovery.speculative_executions);
}

TEST(SessionParallelTest, FlakyLinearScanMatchesTheSerialBatchedBaseline) {
  // parallelism > 1 implies batched linear-scan dispatch, whose speculative
  // executions shift trial positions on flaky targets relative to an
  // unbatched scan. The documented apples-to-apples baseline is therefore a
  // serial run with batched dispatch on: against that, parallel reports are
  // bit-identical.
  std::unique_ptr<GroundTruthModel> model = MakeModel(8, 13);
  auto run_with = [&](int parallelism, bool batched) {
    SessionBuilder builder;
    builder.WithFlakyModel(model.get(), 0.6, /*seed=*/1)
        .WithEngine(EnginePreset::kLinear)
        .WithTrials(3)
        .WithBatchedDispatch(batched)
        .WithParallelism(parallelism);
    auto session = builder.Build();
    EXPECT_TRUE(session.ok()) << session.status();
    auto report = session->Run();
    EXPECT_TRUE(report.ok()) << report.status();
    return std::move(*report);
  };

  SessionReport serial_batched = run_with(1, /*batched=*/true);
  SessionReport parallel = run_with(4, /*batched=*/false);
  ExpectSameDiscovery(parallel.discovery, serial_batched.discovery);
}

// --- builder validation ---------------------------------------------------

TEST(SessionParallelTest, EngineOptionsParallelismBuildsTheSamePool) {
  // Parallelism carried in through WithEngineOptions must behave exactly
  // like WithParallelism: same replica pool, same report, same validation.
  std::unique_ptr<GroundTruthModel> model = MakeModel();
  EngineOptions options = MakeEngineOptions(EnginePreset::kLinear);
  options.trials_per_intervention = 2;
  options.parallelism = 4;

  SessionBuilder via_options;
  via_options.WithModel(model.get()).WithEngineOptions(options);
  auto session = via_options.Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  SessionBuilder via_builder;
  via_builder.WithModel(model.get())
      .WithEngine(EnginePreset::kLinear)
      .WithTrials(2)
      .WithParallelism(4);
  auto expected_session = via_builder.Build();
  ASSERT_TRUE(expected_session.ok()) << expected_session.status();
  auto expected = expected_session->Run();
  ASSERT_TRUE(expected.ok()) << expected.status();

  ExpectSameDiscovery(report->discovery, expected->discovery);

  // ... including the prebuilt-target rejection.
  auto target = MakeModelSessionTarget(model.get());
  ASSERT_TRUE(target.ok()) << target.status();
  SessionBuilder prebuilt;
  prebuilt.WithTarget(std::move(*target)).WithEngineOptions(options);
  EXPECT_EQ(prebuilt.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionParallelTest, RejectsNonPositiveParallelism) {
  std::unique_ptr<GroundTruthModel> model = MakeModel();
  for (int bogus : {0, -1, -1000}) {
    SessionBuilder builder;
    builder.WithModel(model.get()).WithParallelism(bogus);
    auto session = builder.Build();
    ASSERT_FALSE(session.ok()) << "parallelism " << bogus << " accepted";
    EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(session.status().message().find(std::to_string(bogus)),
              std::string::npos)
        << "error must name the offending value";
  }
}

TEST(SessionParallelTest, RejectsAbsurdParallelism) {
  std::unique_ptr<GroundTruthModel> model = MakeModel();
  for (int bogus : {kMaxParallelism + 1, 1 << 20}) {
    SessionBuilder builder;
    builder.WithModel(model.get()).WithParallelism(bogus);
    auto session = builder.Build();
    ASSERT_FALSE(session.ok()) << "parallelism " << bogus << " accepted";
    EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
  }
  // The boundary itself is legal (if unwise on most machines).
  EXPECT_TRUE(ValidateParallelism(kMaxParallelism).ok());
}

TEST(SessionParallelTest, FactoryValidatesConfigParallelismDirectly) {
  // TargetConfig::parallelism bypasses the builder; the factory must reject
  // bogus values too instead of silently degrading to serial dispatch.
  std::unique_ptr<GroundTruthModel> model = MakeModel();
  for (int bogus : {0, -3, kMaxParallelism + 1}) {
    TargetConfig config;
    config.model = model.get();
    config.parallelism = bogus;
    auto target = TargetFactory::Create("model", config);
    ASSERT_FALSE(target.ok()) << "config parallelism " << bogus << " accepted";
    EXPECT_EQ(target.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SessionParallelTest, RejectsParallelismOnPrebuiltTargets) {
  std::unique_ptr<GroundTruthModel> model = MakeModel();
  auto target = MakeModelSessionTarget(model.get());
  ASSERT_TRUE(target.ok()) << target.status();
  SessionBuilder builder;
  builder.WithTarget(std::move(*target)).WithParallelism(4);
  auto session = builder.Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

// --- observer serialization under parallel dispatch -----------------------

TEST(SessionParallelTest, ObserverCallbacksStayOnTheDrivingThread) {
  class ThreadRecorder : public Observer {
   public:
    void OnPhaseChanged(SessionPhase) override { Record(); }
    void OnRoundStarted(uint64_t, const std::vector<PredicateId>&) override {
      Record();
    }
    void OnRoundFinished(const ObservedRound& round) override {
      Record();
      rounds.push_back(round.round);
    }
    void OnPredicateDecided(PredicateId, bool) override { Record(); }

    std::set<std::thread::id> threads;
    std::vector<uint64_t> rounds;

   private:
    void Record() { threads.insert(std::this_thread::get_id()); }
  };

  std::unique_ptr<GroundTruthModel> model = MakeModel();
  ThreadRecorder observer;
  SessionBuilder builder;
  builder.WithModel(model.get())
      .WithEngine(EnginePreset::kLinear)
      .WithParallelism(4)
      .WithObserver(&observer);
  auto session = builder.Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  // Every callback fired on the driving thread, in round order: the
  // parallelism stays behind the target boundary.
  ASSERT_EQ(observer.threads.size(), 1u);
  EXPECT_EQ(*observer.threads.begin(), std::this_thread::get_id());
  ASSERT_EQ(static_cast<int>(observer.rounds.size()),
            report->discovery.rounds);
  for (size_t i = 0; i < observer.rounds.size(); ++i) {
    EXPECT_EQ(observer.rounds[i], static_cast<int>(i) + 1);
  }
}

}  // namespace
}  // namespace aid
