// Tests of process isolation through the public aid::Session facade:
// WithProcessIsolation wiring for the built-in backends, bit-identical
// reports vs. in-process dispatch at every worker count, crash/hang
// subjects completing discovery with their counters surfaced in
// DiscoveryReport, and the builder/factory validation contract.
//
// Subprocess cases skip gracefully on platforms without fork/exec.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "proc/wire.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

#define SKIP_WITHOUT_FORK()                                            \
  do {                                                                 \
    if (!SubprocessIsolationSupported()) {                             \
      GTEST_SKIP() << "no fork/exec on this platform";                 \
    }                                                                  \
  } while (false)

std::unique_ptr<GroundTruthModel> MakeModel(uint64_t seed = 7,
                                            int max_threads = 12) {
  SyntheticAppOptions options;
  options.max_threads = max_threads;
  options.seed = seed;
  auto model = GenerateSyntheticApp(options);
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(*model);
}

void ExpectSameDiscovery(const DiscoveryReport& a, const DiscoveryReport& b) {
  EXPECT_EQ(a.causal_path, b.causal_path);
  EXPECT_EQ(a.spurious, b.spurious);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.speculative_executions, b.speculative_executions);
  EXPECT_EQ(a.path_is_chain, b.path_is_chain);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].intervened, b.history[i].intervened);
    EXPECT_EQ(a.history[i].failure_stopped, b.history[i].failure_stopped);
    EXPECT_EQ(a.history[i].phase, b.history[i].phase);
  }
}

SessionReport RunModelSession(const GroundTruthModel* model, bool isolated,
                              int parallelism) {
  SessionBuilder builder;
  builder.WithModel(model).WithTrials(2).WithParallelism(parallelism);
  if (isolated) builder.WithProcessIsolation(/*trial_deadline_ms=*/10000);
  auto session = builder.Build();
  EXPECT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  EXPECT_TRUE(report.ok()) << report.status();
  return std::move(*report);
}

// --- acceptance: bit-identical reports at any worker count ----------------

TEST(SessionProcTest, ModelReportBitIdenticalToInProcessAtAnyWorkerCount) {
  SKIP_WITHOUT_FORK();
  auto model = MakeModel();
  for (int workers : {1, 2, 4}) {
    SessionReport in_process = RunModelSession(model.get(), false, workers);
    SessionReport isolated = RunModelSession(model.get(), true, workers);
    ExpectSameDiscovery(isolated.discovery, in_process.discovery);
    EXPECT_EQ(isolated.root_cause, in_process.root_cause);
    EXPECT_EQ(isolated.causal_path, in_process.causal_path);
    EXPECT_EQ(isolated.discovery.respawns, 0);
    EXPECT_EQ(isolated.discovery.crashed_trials, 0);
    EXPECT_EQ(isolated.discovery.timed_out_trials, 0);
  }
}

TEST(SessionProcTest, FlakySubjectBitIdenticalAcrossWorkerCounts) {
  SKIP_WITHOUT_FORK();
  auto model = MakeModel(21);
  auto run = [&](int parallelism) {
    SessionBuilder builder;
    builder.WithFlakyModel(model.get(), 0.7, /*seed=*/5)
        .WithTrials(3)
        .WithParallelism(parallelism)
        .WithProcessIsolation();
    auto session = builder.Build();
    EXPECT_TRUE(session.ok()) << session.status();
    auto report = session->Run();
    EXPECT_TRUE(report.ok()) << report.status();
    return std::move(*report);
  };
  SessionReport one = run(1);
  SessionReport four = run(4);
  // Same dispatch mode on both sides (parallelism > 1 implies batching), so
  // compare against the batched 1-worker run.
  SessionBuilder builder;
  builder.WithFlakyModel(model.get(), 0.7, 5)
      .WithTrials(3)
      .WithBatchedDispatch(true)
      .WithProcessIsolation();
  auto batched_session = builder.Build();
  ASSERT_TRUE(batched_session.ok());
  auto batched = batched_session->Run();
  ASSERT_TRUE(batched.ok());
  ExpectSameDiscovery(four.discovery, batched->discovery);
  EXPECT_TRUE(one.has_root_cause());
  EXPECT_TRUE(four.has_root_cause());
}

// --- acceptance: crashing and hanging subjects complete discovery ---------

TEST(SessionProcTest, CrashySubjectCompletesDiscoveryWithCountsSurfaced) {
  SKIP_WITHOUT_FORK();
  auto model = MakeModel(33);
  TargetConfig config;
  config.model = model.get();
  config.manifest_probability = 0.8;
  config.flaky_seed = 9;
  config.isolation = Isolation::kSubprocess;
  config.subprocess.inject_crash_period = 7;
  config.subprocess.trial_deadline_ms = 10000;

  SessionBuilder builder;
  builder.WithTarget("flaky-model", config).WithTrials(3);
  auto session = builder.Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  // The subject crashed repeatedly, discovery still completed, and the
  // report says exactly how rough the ride was.
  EXPECT_GT(report->discovery.crashed_trials, 0);
  EXPECT_EQ(report->discovery.respawns, report->discovery.crashed_trials);
  EXPECT_EQ(report->discovery.timed_out_trials, 0);
  EXPECT_GT(report->discovery.rounds, 0);

  // The rendered report surfaces the counters.
  const std::string rendered = session->Render(*report);
  EXPECT_NE(rendered.find("crashed trials"), std::string::npos);
  EXPECT_NE(rendered.find("respawns"), std::string::npos);
}

TEST(SessionProcTest, CrashySubjectReportIdenticalAcrossWorkerCounts) {
  SKIP_WITHOUT_FORK();
  auto model = MakeModel(33);
  auto run = [&](int parallelism) {
    TargetConfig config;
    config.model = model.get();
    config.isolation = Isolation::kSubprocess;
    config.subprocess.inject_crash_period = 11;
    config.parallelism = parallelism;
    SessionBuilder builder;
    builder.WithTarget("model", config).WithTrials(2);
    if (parallelism > 1) builder.WithParallelism(parallelism);
    auto session = builder.Build();
    EXPECT_TRUE(session.ok()) << session.status();
    auto report = session->Run();
    EXPECT_TRUE(report.ok()) << report.status();
    return std::move(*report);
  };
  // Crash injection keys off the positional trial index, so worker count
  // must not change anything -- including which trials crashed.
  SessionReport two = run(2);
  SessionReport four = run(4);
  ExpectSameDiscovery(two.discovery, four.discovery);
  EXPECT_EQ(two.discovery.crashed_trials, four.discovery.crashed_trials);
  EXPECT_GT(two.discovery.crashed_trials, 0);
}

TEST(SessionProcTest, HangingSubjectCompletesDiscoveryViaDeadline) {
  SKIP_WITHOUT_FORK();
  auto model = MakeModel(17, /*max_threads=*/8);
  TargetConfig config;
  config.model = model.get();
  config.isolation = Isolation::kSubprocess;
  config.subprocess.inject_hang_period = 6;
  config.subprocess.trial_deadline_ms = 300;

  SessionBuilder builder;
  builder.WithTarget("model", config).WithTrials(2);
  auto session = builder.Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_GT(report->discovery.timed_out_trials, 0);
  EXPECT_EQ(report->discovery.respawns, report->discovery.timed_out_trials);
  EXPECT_EQ(report->discovery.crashed_trials, 0);
  const std::string rendered = session->Render(*report);
  EXPECT_NE(rendered.find("timed-out trials"), std::string::npos);
}

// --- builder / factory validation -----------------------------------------

TEST(SessionProcTest, NegativeDeadlineIsRejected) {
  auto model = MakeModel();
  SessionBuilder builder;
  builder.WithModel(model.get()).WithProcessIsolation(-5);
  auto session = builder.Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(session.status().message().find("deadline"), std::string::npos);
}

TEST(SessionProcTest, PrebuiltTargetsCannotBeIsolated) {
  auto model = MakeModel();
  auto target = MakeModelSessionTarget(model.get());
  ASSERT_TRUE(target.ok());
  SessionBuilder builder;
  builder.WithTarget(std::move(*target)).WithProcessIsolation();
  auto session = builder.Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(session.status().message().find("factory backend"),
            std::string::npos);
}

TEST(SessionProcTest, CaseStudySessionRunsIsolated) {
  SKIP_WITHOUT_FORK();
  // End-to-end over a real VM subject: the child re-runs the observation
  // scan and must land on the identical catalog (handshake cross-check).
  auto run = [&](bool isolated) {
    SessionBuilder builder;
    builder.WithCaseStudy("npgsql").WithTrials(1);
    if (isolated) builder.WithProcessIsolation(/*trial_deadline_ms=*/60000);
    auto session = builder.Build();
    EXPECT_TRUE(session.ok()) << session.status();
    auto report = session->Run();
    EXPECT_TRUE(report.ok()) << report.status();
    return std::move(*report);
  };
  SessionReport in_process = run(false);
  SessionReport isolated = run(true);
  ExpectSameDiscovery(isolated.discovery, in_process.discovery);
  EXPECT_EQ(isolated.root_cause, in_process.root_cause);
  EXPECT_TRUE(isolated.has_root_cause());
}

}  // namespace
}  // namespace aid
