// Tests of the AID intervention engine (Algorithms 1-3, Definition 2),
// driven through ground-truth model targets, including an exact replay of
// the paper's Figure 4 walkthrough.

#include "core/engine.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

/// The paper's Figure 4: temporal chain P1..P3, a junction into branches
/// {P4,P5,P6} and {P7 -> {P8, P9} -> P11}, P10 merging below {P6, P8, P9}.
/// True causal path P1 -> P2 -> P11 -> F; P3 and P7 spontaneous; P10 truly
/// caused by P3 and P11 together (it vanishes when either is repaired).
struct Figure4 {
  GroundTruthModel model;
  PredicateId p[12];

  Figure4() {
    model.AddFailure();
    for (int i = 1; i <= 11; ++i) p[i] = model.AddPredicate(i);
    auto edge = [&](int a, int b) { model.AddTemporalEdge(p[a], p[b]); };
    edge(1, 2);
    edge(2, 3);
    edge(3, 4);
    edge(4, 5);
    edge(5, 6);
    edge(3, 7);
    edge(7, 8);
    edge(7, 9);
    edge(8, 11);
    edge(9, 11);
    edge(6, 10);
    edge(8, 10);
    edge(9, 10);
    model.SetCausalChain({p[1], p[2], p[11]});
    model.SetTrueParents(p[10], {p[3], p[11]});
  }
};

std::vector<PredicateId> Sorted(std::vector<PredicateId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(EngineFigure4Test, ReproducesThePaperWalkthrough) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->size(), 12u);

  ModelTarget target(&fig.model);
  CausalPathDiscovery discovery(&*dag, &target, EngineOptions::Aid());
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());

  // The paper's walkthrough takes 8 interventions (vs 11 naively).
  EXPECT_EQ(report->rounds, 8);
  EXPECT_EQ(report->causal_path,
            (std::vector<PredicateId>{fig.p[1], fig.p[2], fig.p[11],
                                      fig.model.failure()}));
  EXPECT_EQ(report->root_cause(), fig.p[1]);
  // Everything else was proven spurious.
  EXPECT_EQ(report->spurious.size(), 8u);
}

TEST(EngineFigure4Test, NaiveTagtNeedsMoreInterventions) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  // Any single random order can get lucky; compare the worst over several
  // seeds (the paper's Figure 7 reports TAGT's worst case).
  uint64_t worst = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    ModelTarget target(&fig.model);
    EngineOptions options = EngineOptions::Tagt();
    options.seed = seed;
    CausalPathDiscovery discovery(&*dag, &target, options);
    auto report = discovery.Run();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(Sorted(report->causal_path),
              Sorted({fig.p[1], fig.p[2], fig.p[11], fig.model.failure()}));
    worst = std::max(worst, report->rounds);
  }
  EXPECT_GT(worst, 8);
}

TEST(EngineTest, SingleCausalPredicateOnChain) {
  GroundTruthModel model;
  model.AddFailure();
  std::vector<PredicateId> chain;
  for (int i = 0; i < 6; ++i) chain.push_back(model.AddPredicate(i));
  for (int i = 0; i + 1 < 6; ++i) {
    model.AddTemporalEdge(chain[static_cast<size_t>(i)],
                          chain[static_cast<size_t>(i) + 1]);
  }
  model.SetCausalChain({chain[3]});  // only one true cause

  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  ModelTarget target(&model);
  CausalPathDiscovery discovery(&*dag, &target, EngineOptions::Aid());
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->causal_path,
            (std::vector<PredicateId>{chain[3], model.failure()}));
  EXPECT_EQ(report->spurious.size(), 5u);
}

TEST(EngineTest, WholeChainCausal) {
  GroundTruthModel model;
  model.AddFailure();
  std::vector<PredicateId> chain;
  for (int i = 0; i < 5; ++i) chain.push_back(model.AddPredicate(i));
  for (int i = 0; i + 1 < 5; ++i) {
    model.AddTemporalEdge(chain[static_cast<size_t>(i)],
                          chain[static_cast<size_t>(i) + 1]);
  }
  model.SetCausalChain(chain);

  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  ModelTarget target(&model);
  CausalPathDiscovery discovery(&*dag, &target, EngineOptions::Aid());
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  std::vector<PredicateId> expected = chain;
  expected.push_back(model.failure());
  EXPECT_EQ(report->causal_path, expected);
  EXPECT_TRUE(report->spurious.empty());
}

TEST(EngineTest, EmptyDagYieldsTrivialPath) {
  GroundTruthModel model;
  model.AddFailure();
  const PredicateId only = model.AddPredicate(0);
  model.SetCausalChain({only});
  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());

  ModelTarget target(&model);
  CausalPathDiscovery discovery(&*dag, &target, EngineOptions::Aid());
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->causal_path.back(), model.failure());
  EXPECT_EQ(report->rounds, 1);  // one intervention proves the single node
}

TEST(EngineTest, InterventionalPruningSparesAncestorsOfIntervened) {
  // Chain c0 -> c1 (both causal) plus a symptom s of c0 attached mid-chain.
  // Intervening on c1 stops the failure while c0 and s still occur; the
  // ancestor guard must keep c0 (an ancestor of c1) undecided while s (not
  // an ancestor) is pruned.
  GroundTruthModel model;
  model.AddFailure();
  const PredicateId c0 = model.AddPredicate(0);
  const PredicateId c1 = model.AddPredicate(1);
  const PredicateId s = model.AddPredicate(2);  // symptom after c1
  model.AddTemporalEdge(c0, c1);
  model.AddTemporalEdge(c1, s);
  model.SetCausalChain({c0, c1});
  model.SetTrueParents(s, {c0});

  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  ModelTarget target(&model);
  CausalPathDiscovery discovery(&*dag, &target, EngineOptions::Aid());
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->causal_path,
            (std::vector<PredicateId>{c0, c1, model.failure()}));
  EXPECT_EQ(report->spurious, (std::vector<PredicateId>{s}));
}

TEST(EngineTest, ReportsHistoryAndExecutions) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  ModelTarget target(&fig.model);
  EngineOptions options = EngineOptions::Aid();
  options.trials_per_intervention = 2;
  CausalPathDiscovery discovery(&*dag, &target, options);
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(static_cast<int>(report->history.size()), report->rounds);
  EXPECT_EQ(report->executions, report->rounds * 2);
  for (const auto& round : report->history) {
    EXPECT_FALSE(round.intervened.empty());
    EXPECT_TRUE(round.phase == "branch" || round.phase == "giwp");
  }
}

TEST(EngineTest, DeterministicAcrossRuns) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  for (int i = 0; i < 3; ++i) {
    ModelTarget target(&fig.model);
    CausalPathDiscovery discovery(&*dag, &target, EngineOptions::Aid());
    auto report = discovery.Run();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->rounds, 8);
  }
}

TEST(EngineTest, TagtSeedChangesGroupingButNotAnswer) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  std::vector<int> rounds;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ModelTarget target(&fig.model);
    EngineOptions options = EngineOptions::Tagt();
    options.seed = seed;
    CausalPathDiscovery discovery(&*dag, &target, options);
    auto report = discovery.Run();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(Sorted(report->causal_path),
              Sorted({fig.p[1], fig.p[2], fig.p[11], fig.model.failure()}));
    rounds.push_back(report->rounds);
  }
  // Different random orders generally produce different round counts.
  EXPECT_GT(*std::max_element(rounds.begin(), rounds.end()),
            *std::min_element(rounds.begin(), rounds.end()) - 1);
}

// Engine-variant property sweep over generated applications: all four
// variants must find exactly the true causal chain, and the variants with
// more machinery must not be slower on average.
class EngineVariantsTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineVariantsTest, AllVariantsFindTheTruth) {
  SyntheticAppOptions options;
  options.max_threads = 8;
  options.seed = static_cast<uint64_t>(GetParam());
  auto model = GenerateSyntheticApp(options);
  ASSERT_TRUE(model.ok());
  auto dag = (*model)->BuildAcDag();
  ASSERT_TRUE(dag.ok());

  std::vector<PredicateId> expected = (*model)->causal_chain();
  expected.push_back((*model)->failure());
  expected = Sorted(expected);

  const EngineOptions variants[4] = {
      EngineOptions::Aid(), EngineOptions::AidNoPredicatePruning(),
      EngineOptions::AidNoPruning(), EngineOptions::Tagt()};
  int rounds[4] = {};
  for (int v = 0; v < 4; ++v) {
    ModelTarget target(model->get());
    CausalPathDiscovery discovery(&*dag, &target, variants[v]);
    auto report = discovery.Run();
    ASSERT_TRUE(report.ok()) << "variant " << v;
    EXPECT_EQ(Sorted(report->causal_path), expected) << "variant " << v;
    rounds[v] = report->rounds;
  }
  // Per-instance the orderings can wobble by a few rounds (pruning shifts
  // the halving boundaries); the strict average-ordering claim is asserted
  // in VariantOrderingHoldsOnAverage below.
  EXPECT_LE(rounds[0], rounds[2] + 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineVariantsTest, ::testing::Range(100, 130));

TEST(EngineVariantsAggregateTest, VariantOrderingHoldsOnAverage) {
  // The paper's Figure 8 claim: on average over many synthetic apps,
  // AID <= AID-P <= AID-P-B <= TAGT in intervention rounds.
  const EngineOptions variants[4] = {
      EngineOptions::Aid(), EngineOptions::AidNoPredicatePruning(),
      EngineOptions::AidNoPruning(), EngineOptions::Tagt()};
  long totals[4] = {};
  for (int seed = 0; seed < 40; ++seed) {
    SyntheticAppOptions options;
    options.max_threads = 12;
    options.seed = 5000 + static_cast<uint64_t>(seed);
    auto model = GenerateSyntheticApp(options);
    ASSERT_TRUE(model.ok());
    auto dag = (*model)->BuildAcDag();
    ASSERT_TRUE(dag.ok());
    for (int v = 0; v < 4; ++v) {
      ModelTarget target(model->get());
      EngineOptions engine = variants[v];
      engine.seed = static_cast<uint64_t>(seed) + 17;
      CausalPathDiscovery discovery(&*dag, &target, engine);
      auto report = discovery.Run();
      ASSERT_TRUE(report.ok());
      totals[v] += report->rounds;
    }
  }
  EXPECT_LT(totals[0], totals[1]);  // predicate pruning helps
  EXPECT_LT(totals[1], totals[2]);  // branch pruning helps
  EXPECT_LE(totals[2], totals[3]);  // topological order helps
}

// --- DiscoveryReport root-cause contract ----------------------------------

TEST(DiscoveryReportTest, EmptyReportHasNoRootCause) {
  DiscoveryReport report;
  EXPECT_FALSE(report.has_root_cause());
  EXPECT_EQ(report.root_cause(), kInvalidPredicate);
}

TEST(DiscoveryReportTest, FailureOnlyPathHasNoRootCause) {
  // The engine always appends F; a path of just <F> means every candidate
  // was proven spurious.
  DiscoveryReport report;
  report.causal_path = {7};
  EXPECT_FALSE(report.has_root_cause());
  EXPECT_EQ(report.root_cause(), kInvalidPredicate);
}

TEST(DiscoveryReportTest, ShortestRealPathReportsItsRootCause) {
  DiscoveryReport report;
  report.causal_path = {3, 7};  // <C0, F>
  EXPECT_TRUE(report.has_root_cause());
  EXPECT_EQ(report.root_cause(), 3);
}

TEST(DiscoveryReportTest, EngineReportsNoRootCauseWhenFailureIsSpontaneous) {
  // Predicates co-occur with a failure that none of them causes (the
  // failure fires regardless of interventions): the engine must prove them
  // all spurious and report an <F>-only path rather than invent a cause.
  GroundTruthModel model;
  model.AddFailure();
  const PredicateId a = model.AddPredicate(1);
  const PredicateId b = model.AddPredicate(2);
  model.AddTemporalEdge(a, b);
  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());

  ModelTarget target(&model);
  CausalPathDiscovery discovery(&*dag, &target, EngineOptions::Aid());
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());

  EXPECT_FALSE(report->has_root_cause());
  EXPECT_EQ(report->root_cause(), kInvalidPredicate);
  EXPECT_EQ(report->causal_path,
            (std::vector<PredicateId>{model.failure()}));
  EXPECT_EQ(Sorted(report->spurious), Sorted({a, b}));
}

// --- batched linear-scan dispatch -----------------------------------------

TEST(EngineBatchedDispatchTest, BatchedLinearScanMatchesSerial) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());

  EngineOptions serial = EngineOptions::Linear();
  ModelTarget serial_target(&fig.model);
  CausalPathDiscovery serial_discovery(&*dag, &serial_target, serial);
  auto serial_report = serial_discovery.Run();
  ASSERT_TRUE(serial_report.ok());

  EngineOptions batched = EngineOptions::Linear();
  batched.batched_dispatch = true;
  ModelTarget batched_target(&fig.model);
  CausalPathDiscovery batched_discovery(&*dag, &batched_target, batched);
  auto batched_report = batched_discovery.Run();
  ASSERT_TRUE(batched_report.ok());

  EXPECT_EQ(batched_report->causal_path, serial_report->causal_path);
  EXPECT_EQ(batched_report->spurious, serial_report->spurious);
  EXPECT_EQ(batched_report->rounds, serial_report->rounds);
  // Batched dispatch executes the whole scan speculatively; pruning skips
  // show up as extra executions, never as different decisions.
  EXPECT_GE(batched_report->executions, serial_report->executions);
}

}  // namespace
}  // namespace aid
