#include "core/vm_target.h"

#include <gtest/gtest.h>

#include "sd/statistical_debugger.h"

namespace aid {
namespace {

/// A flaky program: reader validates a flag the writer publishes late on
/// half the runs.
Result<Program> FlakyProgram() {
  ProgramBuilder b;
  b.Global("ready", 0);
  {
    auto m = b.Method("Publisher");
    m.Random(0, 2);
    const size_t slow = m.JumpIfNonZeroPlaceholder(0);
    m.Delay(5);
    const size_t pub = m.JumpPlaceholder();
    m.PatchTarget(slow);
    m.Delay(80);
    m.PatchTarget(pub);
    m.LoadConst(0, 1).StoreGlobal("ready", 0).Return();
  }
  {
    auto m = b.Method("Check");
    m.SideEffectFree();
    m.LoadGlobal(0, "ready").ThrowIfZero(0, "NotReady").Return(0);
  }
  {
    auto m = b.Method("Consumer");
    m.Delay(40).CallVoid("Check").Return();
  }
  {
    auto m = b.Method("Main");
    m.Spawn(0, "Publisher").Spawn(1, "Consumer").Join(0).Join(1).Return();
  }
  return b.Build("Main");
}

TEST(VmTargetTest, ObservationCollectsBothOutcomes) {
  auto program = FlakyProgram();
  ASSERT_TRUE(program.ok());
  VmTargetOptions options;
  options.min_successes = 20;
  options.min_failures = 20;
  auto target = VmTarget::Create(&*program, options);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ((*target)->observed_failures(), 20);
  EXPECT_EQ((*target)->observation_logs().size(), 40u);
  EXPECT_GE((*target)->executions(), 40);
}

TEST(VmTargetTest, FailsWhenProgramNeverFails) {
  ProgramBuilder b;
  b.Method("Main").Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  VmTargetOptions options;
  options.max_seed_scan = 50;
  EXPECT_FALSE(VmTarget::Create(&*program, options).ok());
}

TEST(VmTargetTest, AcDagFiltersUnsafeAndUnreachable) {
  auto program = FlakyProgram();
  ASSERT_TRUE(program.ok());
  VmTargetOptions options;
  options.min_successes = 25;
  options.min_failures = 25;
  auto target = VmTarget::Create(&*program, options);
  ASSERT_TRUE(target.ok());

  auto sd = StatisticalDebugger::Analyze((*target)->extractor().catalog(),
                                         (*target)->extractor().logs());
  ASSERT_TRUE(sd.ok());
  auto dag = (*target)->BuildAcDag();
  ASSERT_TRUE(dag.ok());
  // The DAG is a subset of the fully-discriminative predicates.
  EXPECT_LE(dag->size(), sd->FullyDiscriminative().size());
  EXPECT_GE(dag->size(), 2u);  // at least a root cause and F
  EXPECT_TRUE(dag->Contains((*target)->extractor().failure_predicate()));
}

TEST(VmTargetTest, RunIntervenedEmptySetStillFails) {
  auto program = FlakyProgram();
  ASSERT_TRUE(program.ok());
  VmTargetOptions options;
  options.min_successes = 15;
  options.min_failures = 15;
  auto target = VmTarget::Create(&*program, options);
  ASSERT_TRUE(target.ok());

  // Re-running failing seeds without interventions must reproduce the
  // failure (the basis of counterfactual reasoning).
  auto result = (*target)->RunIntervened({}, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->logs.size(), 5u);
  EXPECT_TRUE(result->AnyFailed());
}

TEST(VmTargetTest, RunIntervenedOnRootCauseStopsFailure) {
  auto program = FlakyProgram();
  ASSERT_TRUE(program.ok());
  VmTargetOptions options;
  options.min_successes = 15;
  options.min_failures = 15;
  auto target = VmTarget::Create(&*program, options);
  ASSERT_TRUE(target.ok());

  // Find the order-inversion predicate (Check before Publisher finishes).
  const PredicateCatalog& catalog = (*target)->extractor().catalog();
  PredicateId order = kInvalidPredicate;
  for (size_t i = 0; i < catalog.size(); ++i) {
    const Predicate& p = catalog.Get(static_cast<PredicateId>(i));
    if (p.kind == PredKind::kOrder &&
        p.m1 == program->method_names().Find("Check") &&
        p.m2 == program->method_names().Find("Publisher")) {
      order = static_cast<PredicateId>(i);
    }
  }
  ASSERT_NE(order, kInvalidPredicate);

  auto result = (*target)->RunIntervened({order}, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->AnyFailed());
}

TEST(VmTargetTest, SignatureGroupingKeepsDominantFailure) {
  // Two failure modes with distinct signatures; the more common one is kept.
  ProgramBuilder b;
  {
    auto m = b.Method("Main");
    m.Random(0, 8);  // 0 -> rare failure; 1..3 -> common failure; else ok
    m.LoadConst(1, 0).CmpEq(2, 0, 1);
    const size_t rare = m.JumpIfNonZeroPlaceholder(2);
    m.LoadConst(1, 4).CmpLt(2, 0, 1);
    const size_t common = m.JumpIfNonZeroPlaceholder(2);
    m.Return();
    m.PatchTarget(common);
    m.CallVoid("CommonCrash").Return();
    m.PatchTarget(rare);
    m.CallVoid("RareCrash").Return();
  }
  b.Method("CommonCrash").Throw("CommonException");
  b.Method("RareCrash").Throw("RareException");
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  VmTargetOptions options;
  options.min_successes = 20;
  options.min_failures = 20;
  auto target = VmTarget::Create(&*program, options);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ((*target)->primary_signature().exception_type,
            program->exception_names().Find("CommonException"));
  // Only primary-signature failures are in the observation set.
  EXPECT_LE((*target)->observed_failures(), 20);
  for (const auto& log : (*target)->observation_logs()) {
    (void)log;  // all retained failures share the primary signature
  }
}

}  // namespace
}  // namespace aid
