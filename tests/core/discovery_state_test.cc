// Tests of the resumable round-state machine (core/discovery_state.h):
// step-driven execution must be bit-identical (SameDiscoveryOutcome) to the
// blocking CausalPathDiscovery::Run() on every engine preset, and a
// discovery checkpointed between actions -- mid-branch-prune, mid-GIWP, on
// all six case studies, and mid flaky budgeted run -- must resume on a
// fresh target to the exact report of the uninterrupted run.

#include "core/discovery_state.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/target_factory.h"
#include "casestudies/case_study.h"
#include "core/engine.h"
#include "synth/flaky_target.h"
#include "synth/model.h"
#include "trace/serialize.h"

namespace aid {
namespace {

/// The paper's Figure 4 topology (same fixture as engine_test.cc): the
/// smallest model exercising both engine phases -- a junction for
/// Branch-Prune and a chain remainder for GIWP.
struct Figure4 {
  GroundTruthModel model;
  PredicateId p[12];

  Figure4() {
    model.AddFailure();
    for (int i = 1; i <= 11; ++i) p[i] = model.AddPredicate(i);
    auto edge = [&](int a, int b) { model.AddTemporalEdge(p[a], p[b]); };
    edge(1, 2);
    edge(2, 3);
    edge(3, 4);
    edge(4, 5);
    edge(5, 6);
    edge(3, 7);
    edge(7, 8);
    edge(7, 9);
    edge(8, 11);
    edge(9, 11);
    edge(6, 10);
    edge(8, 10);
    edge(9, 10);
    model.SetCausalChain({p[1], p[2], p[11]});
    model.SetTrueParents(p[10], {p[3], p[11]});
  }
};

/// Drives a state machine to completion against `target` -- the exact loop
/// CausalPathDiscovery::Run() is -- and finalizes the report.
Result<DiscoveryReport> DriveToEnd(DiscoveryState& state,
                                   InterventionTarget* target) {
  while (true) {
    AID_ASSIGN_OR_RETURN(DiscoveryAction action, state.NextAction());
    if (action.kind == DiscoveryAction::Kind::kDone) break;
    AID_ASSIGN_OR_RETURN(ActionOutcome outcome,
                         ExecuteDiscoveryAction(state, action, target));
    AID_RETURN_IF_ERROR(state.Feed(action, outcome));
  }
  return state.Finalize();
}

/// Full step-driven discovery from scratch.
Result<DiscoveryReport> StepDriven(const AcDag* dag,
                                   const EngineOptions& options,
                                   InterventionTarget* target) {
  AID_RETURN_IF_ERROR(ValidateDiscoveryOptions(options));
  DiscoveryState state(dag, options, Rng(options.seed));
  return DriveToEnd(state, target);
}

/// Runs `feeds` actions, checkpoints, resumes the checkpoint on
/// `resume_target`, and drives the resumed machine to its report. The
/// pre-checkpoint leg runs on `target`; `next_phase` (optional) receives
/// the phase the resumed machine plans next -- "branch" mid-Branch-Prune,
/// "giwp" mid-GIWP. `executions_at_checkpoint` (optional) receives the
/// resumed spend ledger, e.g. to SeekTrial a fresh positional target.
Result<DiscoveryReport> CheckpointAfter(
    const AcDag* dag, const EngineOptions& options, InterventionTarget* target,
    InterventionTarget* resume_target, int feeds,
    std::string* next_phase = nullptr,
    uint64_t* executions_at_checkpoint = nullptr,
    const std::function<void(uint64_t)>& position_resume_target = nullptr) {
  AID_RETURN_IF_ERROR(ValidateDiscoveryOptions(options));
  DiscoveryState state(dag, options, Rng(options.seed));
  for (int i = 0; i < feeds; ++i) {
    AID_ASSIGN_OR_RETURN(DiscoveryAction action, state.NextAction());
    if (action.kind == DiscoveryAction::Kind::kDone) break;
    AID_ASSIGN_OR_RETURN(ActionOutcome outcome,
                         ExecuteDiscoveryAction(state, action, target));
    AID_RETURN_IF_ERROR(state.Feed(action, outcome));
  }

  AID_ASSIGN_OR_RETURN(std::string blob, state.Serialize());
  AID_ASSIGN_OR_RETURN(
      std::unique_ptr<DiscoveryState> resumed,
      DiscoveryState::Deserialize(dag, blob, /*observer=*/nullptr,
                                  /*telemetry=*/nullptr));
  if (executions_at_checkpoint != nullptr) {
    *executions_at_checkpoint = resumed->executions();
  }
  if (position_resume_target) position_resume_target(resumed->executions());
  if (next_phase != nullptr) {
    AID_ASSIGN_OR_RETURN(DiscoveryAction peek, resumed->NextAction());
    *next_phase =
        peek.kind == DiscoveryAction::Kind::kDone ? "done" : peek.phase;
  }
  return DriveToEnd(*resumed, resume_target);
}

struct Preset {
  const char* name;
  EngineOptions options;
};

std::vector<Preset> AllPresets() {
  std::vector<Preset> presets;
  presets.push_back({"Aid", EngineOptions::Aid()});
  presets.push_back(
      {"AidNoPredicatePruning", EngineOptions::AidNoPredicatePruning()});
  presets.push_back({"AidNoPruning", EngineOptions::AidNoPruning()});
  presets.push_back({"Tagt", EngineOptions::Tagt()});
  presets.push_back({"Linear", EngineOptions::Linear()});

  EngineOptions batched = EngineOptions::Linear();
  batched.batched_dispatch = true;
  presets.push_back({"LinearBatched", batched});

  EngineOptions multi_trial = EngineOptions::Aid();
  multi_trial.trials_per_intervention = 3;
  presets.push_back({"AidThreeTrials", multi_trial});

  EngineOptions budgeted = EngineOptions::Aid();
  budgeted.trials_per_intervention = 3;
  budgeted.budget.enabled = true;
  presets.push_back({"AidBudgeted", budgeted});

  EngineOptions budgeted_batch = EngineOptions::Linear();
  budgeted_batch.batched_dispatch = true;
  budgeted_batch.trials_per_intervention = 3;
  budgeted_batch.budget.enabled = true;
  presets.push_back({"LinearBatchedBudgeted", budgeted_batch});
  return presets;
}

TEST(DiscoveryStateParityTest, StepDrivenMatchesRunOnEveryPreset) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());

  for (const Preset& preset : AllPresets()) {
    ModelTarget run_target(&fig.model);
    CausalPathDiscovery discovery(&*dag, &run_target, preset.options);
    auto blocking = discovery.Run();
    ASSERT_TRUE(blocking.ok()) << preset.name << ": " << blocking.status();

    ModelTarget step_target(&fig.model);
    auto stepped = StepDriven(&*dag, preset.options, &step_target);
    ASSERT_TRUE(stepped.ok()) << preset.name << ": " << stepped.status();

    EXPECT_TRUE(SameDiscoveryOutcome(*blocking, *stepped)) << preset.name;
    EXPECT_EQ(blocking->history.size(), stepped->history.size())
        << preset.name;
  }
}

TEST(DiscoveryStateParityTest, NextActionIsIdempotentUntilFed) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());

  DiscoveryState state(&*dag, EngineOptions::Aid(), Rng(1));
  auto first = state.NextAction();
  ASSERT_TRUE(first.ok());
  auto second = state.NextAction();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->kind, second->kind);
  EXPECT_EQ(first->preds, second->preds);
  EXPECT_EQ(first->trials, second->trials);
  EXPECT_STREQ(first->phase, second->phase);
}

TEST(DiscoveryStateCheckpointTest, SerializeWhileActionPendingIsRejected) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());

  DiscoveryState state(&*dag, EngineOptions::Aid(), Rng(1));
  auto action = state.NextAction();
  ASSERT_TRUE(action.ok());
  auto blob = state.Serialize();
  ASSERT_FALSE(blob.ok());
  EXPECT_EQ(blob.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DiscoveryStateCheckpointTest, RoundTripIsByteStable) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());

  ModelTarget target(&fig.model);
  DiscoveryState state(&*dag, EngineOptions::Aid(), Rng(1));
  for (int i = 0; i < 3; ++i) {
    auto action = state.NextAction();
    ASSERT_TRUE(action.ok());
    ASSERT_NE(action->kind, DiscoveryAction::Kind::kDone);
    auto outcome = ExecuteDiscoveryAction(state, *action, &target);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(state.Feed(*action, *outcome).ok());
  }

  auto blob = state.Serialize();
  ASSERT_TRUE(blob.ok()) << blob.status();
  auto resumed = DiscoveryState::Deserialize(&*dag, *blob, nullptr, nullptr);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  auto reblob = (*resumed)->Serialize();
  ASSERT_TRUE(reblob.ok()) << reblob.status();
  EXPECT_EQ(*blob, *reblob);
}

TEST(DiscoveryStateCheckpointTest, DeserializeRejectsCorruptedBytes) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());

  DiscoveryState state(&*dag, EngineOptions::Aid(), Rng(1));
  auto blob = state.Serialize();
  ASSERT_TRUE(blob.ok()) << blob.status();

  // Unknown format version.
  std::string bad_version = *blob;
  bad_version[0] = static_cast<char>(0x7f);
  EXPECT_FALSE(DiscoveryState::Deserialize(&*dag, bad_version, nullptr,
                                           nullptr)
                   .ok());

  // Truncations anywhere must fail cleanly, never crash.
  for (size_t len : {size_t{0}, blob->size() / 4, blob->size() / 2,
                     blob->size() - 1}) {
    auto truncated = DiscoveryState::Deserialize(
        &*dag, std::string_view(blob->data(), len), nullptr, nullptr);
    EXPECT_FALSE(truncated.ok()) << "prefix of " << len << " bytes";
  }
}

TEST(DiscoveryStateCheckpointTest, EngineOptionsCodecRoundTrips) {
  EngineOptions options = EngineOptions::Tagt();
  options.linear_scan = true;
  options.batched_dispatch = true;
  options.trials_per_intervention = 7;
  options.parallelism = 4;
  options.seed = 0xfeedULL;
  options.budget.enabled = true;
  options.budget.error_tolerance = 0.05;
  options.budget.causal_prior = 0.4;
  options.budget.max_trials_per_round = 9;
  options.budget.max_executions = 1234;
  options.budget.flakiness_prior_alpha = 2.5;
  options.budget.flakiness_prior_beta = 1.5;
  options.budget.topology_discount = 0.75;
  options.budget.cost_ewma_alpha = 0.5;
  options.budget.advice.suspects = {3, 5};
  options.budget.advice.suspect_prior = 0.8;
  options.budget.advice.sd_scores = {{2, 0.25}, {4, 0.75}};
  options.budget.advice.sd_weight = 0.6;

  WireWriter writer;
  EncodeEngineOptions(options, writer);
  const std::string bytes = writer.Release();
  WireReader reader(bytes);
  auto decoded = DecodeEngineOptions(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  EXPECT_EQ(decoded->topological_order, options.topological_order);
  EXPECT_EQ(decoded->predicate_pruning, options.predicate_pruning);
  EXPECT_EQ(decoded->branch_pruning, options.branch_pruning);
  EXPECT_EQ(decoded->linear_scan, options.linear_scan);
  EXPECT_EQ(decoded->batched_dispatch, options.batched_dispatch);
  EXPECT_EQ(decoded->trials_per_intervention,
            options.trials_per_intervention);
  EXPECT_EQ(decoded->parallelism, options.parallelism);
  EXPECT_EQ(decoded->seed, options.seed);
  EXPECT_EQ(decoded->budget.enabled, options.budget.enabled);
  EXPECT_EQ(decoded->budget.error_tolerance, options.budget.error_tolerance);
  EXPECT_EQ(decoded->budget.causal_prior, options.budget.causal_prior);
  EXPECT_EQ(decoded->budget.max_trials_per_round,
            options.budget.max_trials_per_round);
  EXPECT_EQ(decoded->budget.max_executions, options.budget.max_executions);
  EXPECT_EQ(decoded->budget.flakiness_prior_alpha,
            options.budget.flakiness_prior_alpha);
  EXPECT_EQ(decoded->budget.flakiness_prior_beta,
            options.budget.flakiness_prior_beta);
  EXPECT_EQ(decoded->budget.topology_discount,
            options.budget.topology_discount);
  EXPECT_EQ(decoded->budget.cost_ewma_alpha, options.budget.cost_ewma_alpha);
  EXPECT_EQ(decoded->budget.advice.suspects, options.budget.advice.suspects);
  EXPECT_EQ(decoded->budget.advice.suspect_prior,
            options.budget.advice.suspect_prior);
  ASSERT_EQ(decoded->budget.advice.sd_scores.size(), 2u);
  EXPECT_EQ(decoded->budget.advice.sd_scores[1].id, 4);
  EXPECT_EQ(decoded->budget.advice.sd_scores[1].score, 0.75);
  EXPECT_EQ(decoded->budget.advice.sd_weight, options.budget.advice.sd_weight);
  // The engine options must be the LAST thing decoded here.
  EXPECT_TRUE(reader.Finish().ok());
  // Process-local pointers never cross the wire.
  EXPECT_EQ(decoded->observer, nullptr);
  EXPECT_EQ(decoded->telemetry, nullptr);
}

TEST(DiscoveryStateCheckpointTest, EveryBoundaryResumesToTheSameReport) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  const EngineOptions options = EngineOptions::Aid();

  ModelTarget baseline_target(&fig.model);
  CausalPathDiscovery discovery(&*dag, &baseline_target, options);
  auto baseline = discovery.Run();
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->rounds, 8u);  // the Figure 4 walkthrough

  bool saw_branch = false;
  bool saw_giwp = false;
  for (uint64_t k = 0; k <= baseline->rounds; ++k) {
    ModelTarget pre(&fig.model);
    ModelTarget post(&fig.model);  // a "fresh host" for the resumed leg
    std::string next_phase;
    auto resumed = CheckpointAfter(&*dag, options, &pre, &post,
                                   static_cast<int>(k), &next_phase);
    ASSERT_TRUE(resumed.ok()) << "checkpoint after " << k << " rounds: "
                              << resumed.status();
    EXPECT_TRUE(SameDiscoveryOutcome(*baseline, *resumed))
        << "checkpoint after " << k << " rounds";
    if (next_phase == "branch") saw_branch = true;
    if (next_phase == "giwp") saw_giwp = true;
  }
  // Figure 4 has a junction, so the boundary sweep must have checkpointed
  // in the middle of BOTH phases.
  EXPECT_TRUE(saw_branch);
  EXPECT_TRUE(saw_giwp);
}

TEST(DiscoveryStateCheckpointTest, TagtAndBatchedBoundariesResumeToo) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());

  EngineOptions batched = EngineOptions::Linear();
  batched.batched_dispatch = true;
  for (const EngineOptions& options :
       {EngineOptions::Tagt(), batched}) {
    ModelTarget baseline_target(&fig.model);
    CausalPathDiscovery discovery(&*dag, &baseline_target, options);
    auto baseline = discovery.Run();
    ASSERT_TRUE(baseline.ok());

    for (int k : {1, 2, 3}) {
      ModelTarget pre(&fig.model);
      ModelTarget post(&fig.model);
      auto resumed = CheckpointAfter(&*dag, options, &pre, &post, k);
      ASSERT_TRUE(resumed.ok()) << resumed.status();
      EXPECT_TRUE(SameDiscoveryOutcome(*baseline, *resumed))
          << "linear_scan=" << options.linear_scan << " checkpoint " << k;
    }
  }
}

/// Checkpoint/resume across the six real-world case studies: the resumed
/// leg runs on a freshly built VM target -- the "another host rebuilt the
/// subject from its SubjectSpec" scenario the checkpoint format exists for.
class CaseStudyCheckpointTest : public ::testing::TestWithParam<int> {};

TEST_P(CaseStudyCheckpointTest, MidBranchAndMidGiwpResumeIdentically) {
  const std::string& key =
      CaseStudyKeys()[static_cast<size_t>(GetParam())];
  auto study = MakeCaseStudyByKey(key);
  ASSERT_TRUE(study.ok()) << study.status();

  auto host_a = MakeVmSessionTarget(&study->program, study->target_options);
  ASSERT_TRUE(host_a.ok()) << host_a.status();
  auto dag = (*host_a)->BuildAcDag();
  ASSERT_TRUE(dag.ok()) << dag.status();

  EngineOptions options = EngineOptions::Aid();
  options.trials_per_intervention = 3;

  CausalPathDiscovery discovery(&*dag, (*host_a)->intervention_target(),
                                options);
  auto baseline = discovery.Run();
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_GE(baseline->rounds, 2u) << key;

  // Find one checkpoint boundary inside each phase by replaying the run
  // and peeking what the resumed machine would plan next.
  std::vector<int> boundaries;
  {
    int mid_branch = -1;
    int mid_giwp = -1;
    for (uint64_t k = 1; k < baseline->rounds; ++k) {
      auto fresh = MakeVmSessionTarget(&study->program, study->target_options);
      ASSERT_TRUE(fresh.ok());
      std::string next_phase;
      auto probe = CheckpointAfter(&*dag, options,
                                   (*host_a)->intervention_target(),
                                   (*fresh)->intervention_target(),
                                   static_cast<int>(k), &next_phase);
      ASSERT_TRUE(probe.ok()) << key << ": " << probe.status();
      EXPECT_TRUE(SameDiscoveryOutcome(*baseline, *probe))
          << key << " checkpoint " << k;
      if (next_phase == "branch" && mid_branch < 0) {
        mid_branch = static_cast<int>(k);
      }
      if (next_phase == "giwp" && mid_giwp < 0) mid_giwp = static_cast<int>(k);
      if (mid_branch >= 0 && mid_giwp >= 0) break;
    }
    // Every case study ends in a GIWP pass; a branch-phase boundary exists
    // only when the AC-DAG has a junction to prune.
    EXPECT_GE(mid_giwp, 1) << key;
    if (mid_branch >= 0) boundaries.push_back(mid_branch);
    if (mid_giwp >= 0) boundaries.push_back(mid_giwp);
  }
  ASSERT_FALSE(boundaries.empty()) << key;
}

INSTANTIATE_TEST_SUITE_P(AllSix, CaseStudyCheckpointTest,
                         ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return CaseStudyKeys()[static_cast<size_t>(
                               info.param)];
                         });

TEST(DiscoveryStateCheckpointTest, FlakyBudgetedRunResumesOnAFreshTarget) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());

  EngineOptions options = EngineOptions::Aid();
  options.trials_per_intervention = 5;
  options.budget.enabled = true;
  constexpr double kManifest = 0.7;
  constexpr uint64_t kFlakySeed = 77;

  FlakyModelTarget baseline_target(&fig.model, kManifest, kFlakySeed);
  CausalPathDiscovery discovery(&*dag, &baseline_target, options);
  auto baseline = discovery.Run();
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_GT(baseline->rounds, 3u);

  for (int k : {1, 3}) {
    FlakyModelTarget pre(&fig.model, kManifest, kFlakySeed);
    // The resumed leg runs on a brand-new flaky target: positional
    // determinism (exec/replicable.h) means seeking it to the checkpoint's
    // execution ledger replays the exact manifestation coin flips the
    // uninterrupted run would have drawn.
    FlakyModelTarget post(&fig.model, kManifest, kFlakySeed);
    uint64_t spent = 0;
    auto resumed = CheckpointAfter(
        &*dag, options, &pre, &post, k, /*next_phase=*/nullptr, &spent,
        [&post](uint64_t executions) { post.SeekTrial(executions); });
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    EXPECT_GT(spent, 0u);
    EXPECT_TRUE(SameDiscoveryOutcome(*baseline, *resumed))
        << "checkpoint " << k;
    EXPECT_EQ(baseline->budgeted_trials_allocated,
              resumed->budgeted_trials_allocated)
        << "checkpoint " << k;
    EXPECT_EQ(baseline->budget_early_stops, resumed->budget_early_stops)
        << "checkpoint " << k;
  }
}

TEST(DiscoveryStateCheckpointTest, ExhaustedBudgetResumesWithConfidence) {
  Figure4 fig;
  auto dag = fig.model.BuildAcDag();
  ASSERT_TRUE(dag.ok());

  EngineOptions options = EngineOptions::Aid();
  options.trials_per_intervention = 3;
  options.budget.enabled = true;
  options.budget.max_executions = 6;  // runs out mid-discovery

  ModelTarget baseline_target(&fig.model);
  CausalPathDiscovery discovery(&*dag, &baseline_target, options);
  auto baseline = discovery.Run();
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_TRUE(baseline->budget_exhausted);

  ModelTarget pre(&fig.model);
  ModelTarget post(&fig.model);
  auto resumed = CheckpointAfter(&*dag, options, &pre, &post, 2);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(SameDiscoveryOutcome(*baseline, *resumed));
  EXPECT_TRUE(resumed->budget_exhausted);
  ASSERT_EQ(baseline->confidence.size(), resumed->confidence.size());
  for (size_t i = 0; i < baseline->confidence.size(); ++i) {
    EXPECT_EQ(baseline->confidence[i].id, resumed->confidence[i].id);
    EXPECT_DOUBLE_EQ(baseline->confidence[i].causal_posterior,
                     resumed->confidence[i].causal_posterior);
  }
}

}  // namespace
}  // namespace aid
