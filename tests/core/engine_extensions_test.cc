// Tests of the engine extensions: linear-scan mode (Section 2's crossover
// regime), assumption-violation detection (Section 5.1), robustness to
// flaky targets (footnote 1), and report rendering.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/report.h"
#include "synth/flaky_target.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

GroundTruthModel MakeChainModel(int n, std::vector<int> causal_positions) {
  GroundTruthModel model;
  model.AddFailure();
  std::vector<PredicateId> chain;
  for (int i = 0; i < n; ++i) chain.push_back(model.AddPredicate(i));
  for (int i = 0; i + 1 < n; ++i) {
    model.AddTemporalEdge(chain[static_cast<size_t>(i)],
                          chain[static_cast<size_t>(i) + 1]);
  }
  std::vector<PredicateId> causal;
  for (int pos : causal_positions) {
    causal.push_back(chain[static_cast<size_t>(pos)]);
  }
  model.SetCausalChain(causal);
  return model;
}

TEST(LinearScanTest, InterveneOneAtATime) {
  GroundTruthModel model = MakeChainModel(6, {2});
  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  ModelTarget target(&model);
  EngineOptions options = EngineOptions::Linear();
  options.predicate_pruning = false;
  CausalPathDiscovery discovery(&*dag, &target, options);
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  // Every round touches exactly one predicate; all six get visited.
  EXPECT_EQ(report->rounds, 6);
  for (const auto& round : report->history) {
    EXPECT_EQ(round.intervened.size(), 1u);
  }
  EXPECT_EQ(report->root_cause(), model.causal_chain().front());
}

TEST(LinearScanTest, PruningStillShortensTheScan) {
  // With predicate pruning on, intervening on the single cause stops the
  // failure and prunes every still-occurring candidate downstream.
  GroundTruthModel model = MakeChainModel(8, {0});
  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  ModelTarget target(&model);
  CausalPathDiscovery discovery(&*dag, &target, EngineOptions::Linear());
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->rounds, 8);
  EXPECT_EQ(report->root_cause(), model.causal_chain().front());
}

TEST(AssumptionViolationTest, ConjunctiveCausesOnDisjointBranchesAreFlagged) {
  // a and b sit on parallel branches and the failure needs both: each is
  // individually counterfactual. Pruning is disabled here because both
  // branch pruning and Definition 2 *embody* the single-root-cause
  // assumption (see the companion test below); plain group intervention
  // confirms both causes and the unordered pair trips the chain check.
  GroundTruthModel model;
  model.AddFailure();
  const PredicateId root = model.AddPredicate(0);
  const PredicateId a = model.AddPredicate(1);
  const PredicateId b = model.AddPredicate(2);
  model.AddTemporalEdge(root, a);
  model.AddTemporalEdge(root, b);
  model.SetTrueParents(a, {});
  model.SetTrueParents(b, {});
  // Wire F = a AND b directly (bypassing SetCausalChain).
  model.SetTrueParents(model.failure(), {a, b});

  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  ModelTarget target(&model);
  CausalPathDiscovery discovery(&*dag, &target, EngineOptions::AidNoPruning());
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  // Both causes found (plus F)...
  EXPECT_EQ(report->causal_path.size(), 3u);
  // ...and the chain violation is reported.
  EXPECT_FALSE(report->path_is_chain);
}

TEST(AssumptionViolationTest, PruningEmbodiesTheSingleRootCauseAssumption) {
  // With full AID, intervening on one conjunctive cause stops the failure
  // while the other still occurs; Definition 2 then (correctly, under the
  // paper's Assumption 1) discards the other as spurious. The result is a
  // well-formed chain containing one of the two causes -- the documented
  // behavior when the assumption is violated.
  GroundTruthModel model;
  model.AddFailure();
  const PredicateId a = model.AddPredicate(0);
  const PredicateId b = model.AddPredicate(1);
  model.SetTrueParents(model.failure(), {a, b});

  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  ModelTarget target(&model);
  CausalPathDiscovery discovery(&*dag, &target, EngineOptions::Aid());
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->causal_path.size(), 2u);  // one cause + F
  EXPECT_TRUE(report->path_is_chain);
  const PredicateId found = report->root_cause();
  EXPECT_TRUE(found == a || found == b);
}

TEST(AssumptionViolationTest, ProperChainsAreNotFlagged) {
  GroundTruthModel model = MakeChainModel(5, {1, 3});
  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  ModelTarget target(&model);
  CausalPathDiscovery discovery(&*dag, &target, EngineOptions::Aid());
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->path_is_chain);
}

TEST(FlakyTargetTest, EnoughTrialsRecoverTheTruth) {
  GroundTruthModel model = MakeChainModel(7, {2, 4});
  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  // The failure manifests on 60% of executions; 8 trials make a silent
  // miss (0.4^8 ~ 0.07%) negligible for this seed.
  FlakyModelTarget target(&model, /*manifest_probability=*/0.6, /*seed=*/11);
  EngineOptions options = EngineOptions::Aid();
  options.trials_per_intervention = 8;
  CausalPathDiscovery discovery(&*dag, &target, options);
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  std::vector<PredicateId> expected = model.causal_chain();
  expected.push_back(model.failure());
  EXPECT_EQ(report->causal_path, expected);
  EXPECT_EQ(report->executions, report->rounds * 8);
}

TEST(FlakyTargetTest, SingleTrialCanBeFooledButTerminates) {
  GroundTruthModel model = MakeChainModel(7, {2, 4});
  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  FlakyModelTarget target(&model, /*manifest_probability=*/0.5, /*seed=*/3);
  EngineOptions options = EngineOptions::Aid();
  options.trials_per_intervention = 1;
  CausalPathDiscovery discovery(&*dag, &target, options);
  auto report = discovery.Run();
  // No correctness guarantee with one trial on a flaky target, but the
  // engine must terminate cleanly with a well-formed report.
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->causal_path.empty());
  EXPECT_EQ(report->causal_path.back(), model.failure());
}

TEST(ReportTest, RendersRootCausePathAndTranscript) {
  GroundTruthModel model = MakeChainModel(4, {1});
  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  ModelTarget target(&model);
  CausalPathDiscovery discovery(&*dag, &target, EngineOptions::Aid());
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());

  ReportRenderOptions options;
  options.include_spurious = true;
  const std::string text = RenderReport(*report, *dag, options);
  EXPECT_NE(text.find("root cause:"), std::string::npos);
  EXPECT_NE(text.find("causal explanation path:"), std::string::npos);
  EXPECT_NE(text.find("intervention transcript:"), std::string::npos);
  EXPECT_NE(text.find("proven spurious:"), std::string::npos);
  EXPECT_NE(text.find("FAILURE"), std::string::npos);
  EXPECT_EQ(text.find("WARNING"), std::string::npos);
}

// --- process-isolation health accounting ----------------------------------

namespace {

/// Wraps a ModelTarget, injecting crash/timeout outcomes on chosen trials
/// and reporting health counters -- the engine-facing behavior of
/// proc::SubprocessTarget without any real processes.
class UnhealthyTarget : public InterventionTarget {
 public:
  explicit UnhealthyTarget(const GroundTruthModel* model) : inner_(model) {}

  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override {
    AID_ASSIGN_OR_RETURN(TargetRunResult result,
                         inner_.RunIntervened(intervened, trials));
    for (auto& log : result.logs) {
      const uint64_t trial = trial_cursor_++;
      if (crash_period != 0 && (trial + 1) % crash_period == 0 &&
          (crash_budget < 0 ||
           health_.crashed_trials < static_cast<uint64_t>(crash_budget))) {
        // A crashed trial: failing, partial (empty) observations.
        log = PredicateLog{};
        log.failed = true;
        log.outcome = TrialOutcome::kCrashed;
        ++health_.crashed_trials;
        ++health_.respawns;
      }
    }
    return result;
  }
  uint64_t executions() const override { return inner_.executions(); }
  TargetHealth health() const override { return health_; }

  uint64_t crash_period = 0;
  int crash_budget = -1;  ///< max crashed trials; -1 = unlimited

 private:
  ModelTarget inner_;
  uint64_t trial_cursor_ = 0;
  TargetHealth health_;
};

}  // namespace

TEST(TargetHealthTest, EngineSurfacesHealthDeltasInTheReport) {
  GroundTruthModel model = MakeChainModel(6, {2});
  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  UnhealthyTarget target(&model);
  target.crash_period = 4;
  EngineOptions options;
  options.trials_per_intervention = 2;
  CausalPathDiscovery discovery(&*dag, &target, options);
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->crashed_trials, 0);
  EXPECT_EQ(report->respawns, report->crashed_trials);
  EXPECT_EQ(report->timed_out_trials, 0);
  EXPECT_EQ(report->crashed_trials, target.health().crashed_trials);

  // A second run reports only its own deltas, not the cumulative counters.
  CausalPathDiscovery second(&*dag, &target, options);
  auto second_report = second.Run();
  ASSERT_TRUE(second_report.ok());
  EXPECT_EQ(second_report->crashed_trials,
            target.health().crashed_trials - report->crashed_trials);

  const std::string text = RenderReport(*report, *dag);
  EXPECT_NE(text.find("crashed trials"), std::string::npos);
}

TEST(TargetHealthTest, PruningIgnoresPartialLogs) {
  // A crashed trial's log is failing but PARTIAL (here: empty). Definition 2
  // would read "failed, and P was not observed" from it and prune every
  // still-undecided candidate -- including the real root cause. The engine
  // must skip partial logs in pruning while still letting the crash count as
  // the round's failure.
  GroundTruthModel model = MakeChainModel(5, {3});
  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  UnhealthyTarget target(&model);
  target.crash_period = 1;      // first trial crashes...
  target.crash_budget = 1;      // ...and only the first

  EngineOptions options = EngineOptions::Linear();  // pruning on, 1-by-1 scan
  CausalPathDiscovery discovery(&*dag, &target, options);
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());

  // Round 1 (intervening the first chain predicate) saw only the crashed
  // log: the intervened predicate is rightly spurious (failure persisted),
  // but nothing else may be pruned from that empty log -- the scan must go
  // on to certify the true root cause at position 3.
  EXPECT_EQ(report->crashed_trials, 1);
  EXPECT_EQ(report->root_cause(), model.causal_chain().front());
  // Rounds 1-4 scan P0..P3 (P3 certifies; its complete success log then
  // legitimately prunes P4). Without the partial-log guard the crashed
  // round-1 log would have pruned everything and discovery would stop at 1.
  EXPECT_EQ(report->rounds, 4);
}

TEST(ReportTest, WarnsOnAssumptionViolation) {
  GroundTruthModel model;
  model.AddFailure();
  const PredicateId a = model.AddPredicate(0);
  const PredicateId b = model.AddPredicate(1);
  model.SetTrueParents(model.failure(), {a, b});
  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  ModelTarget target(&model);
  CausalPathDiscovery discovery(&*dag, &target, EngineOptions::AidNoPruning());
  auto report = discovery.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->path_is_chain);
  const std::string text = RenderReport(*report, *dag);
  EXPECT_NE(text.find("WARNING"), std::string::npos);
}

}  // namespace
}  // namespace aid
