#include "runtime/program.h"

#include <gtest/gtest.h>

namespace aid {
namespace {

TEST(ProgramBuilderTest, BuildsMinimalProgram) {
  ProgramBuilder b;
  b.Method("Main").LoadConst(0, 1).Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->entry(), program->method_names().Find("Main"));
  EXPECT_EQ(program->methods().size(), 1u);
}

TEST(ProgramBuilderTest, MissingEntryIsRejected) {
  ProgramBuilder b;
  b.Method("Main").Return();
  EXPECT_FALSE(b.Build("Nope").ok());
}

TEST(ProgramBuilderTest, ReferencedMethodWithoutBodyIsRejected) {
  ProgramBuilder b;
  b.Method("Main").CallVoid("Ghost").Return();
  auto program = b.Build("Main");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("Ghost"), std::string::npos);
}

TEST(ProgramBuilderTest, MethodMustTerminate) {
  ProgramBuilder b;
  b.Method("Main").LoadConst(0, 1);
  EXPECT_FALSE(b.Build("Main").ok());
}

TEST(ProgramBuilderTest, RegisterOutOfRangeIsRejected) {
  ProgramBuilder b;
  b.Method("Main").LoadConst(99, 1).Return();
  EXPECT_FALSE(b.Build("Main").ok());
}

TEST(ProgramBuilderTest, UnpatchedJumpIsRejected) {
  ProgramBuilder b;
  auto m = b.Method("Main");
  m.JumpPlaceholder();  // target never patched (-1)
  m.Return();
  EXPECT_FALSE(b.Build("Main").ok());
}

TEST(ProgramBuilderTest, PatchedJumpValidates) {
  ProgramBuilder b;
  auto m = b.Method("Main");
  m.LoadConst(0, 1);
  const size_t skip = m.JumpIfNonZeroPlaceholder(0);
  m.LoadConst(0, 2);
  m.PatchTarget(skip);
  m.Return(0);
  EXPECT_TRUE(b.Build("Main").ok());
}

TEST(ProgramBuilderTest, GlobalsArraysMutexesAreDeclared) {
  ProgramBuilder b;
  b.Global("g", 5);
  b.Array("a", 3);
  b.Mutex("m");
  b.Method("Main").Lock("m").Unlock("m").Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  const SymbolId g = program->object_names().Find("g");
  const SymbolId a = program->object_names().Find("a");
  const SymbolId m = program->object_names().Find("m");
  EXPECT_EQ(program->globals().at(g), 5);
  EXPECT_EQ(program->arrays().at(a), 3);
  EXPECT_EQ(program->object_kind(g), ObjectKind::kGlobal);
  EXPECT_EQ(program->object_kind(a), ObjectKind::kArray);
  EXPECT_EQ(program->object_kind(m), ObjectKind::kMutex);
}

TEST(ProgramBuilderTest, SideEffectFreeAndCatchFlags) {
  ProgramBuilder b;
  b.Method("Safe").SideEffectFree().LoadConst(0, 1).Return(0);
  b.Method("Guard").CatchesExceptions(-1).CallVoid("Safe").Return();
  b.Method("Main").CallVoid("Guard").Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(
      program->method(program->method_names().Find("Safe")).side_effect_free);
  const MethodDef& guard =
      program->method(program->method_names().Find("Guard"));
  EXPECT_TRUE(guard.catches_exceptions);
  EXPECT_EQ(guard.catch_fallback, -1);
}

TEST(ProgramBuilderTest, BuiltinExceptionsExist) {
  ProgramBuilder b;
  b.Method("Main").Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  EXPECT_NE(program->index_out_of_range(), kInvalidSymbol);
  EXPECT_NE(program->deadlock(), kInvalidSymbol);
  EXPECT_EQ(program->exception_names().Name(program->index_out_of_range()),
            "IndexOutOfRange");
}

TEST(ProgramBuilderTest, WithCostOverridesInstructionCost) {
  ProgramBuilder b;
  auto m = b.Method("Main");
  m.LoadConst(0, 1).WithCost(25).Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->method(program->entry()).code[0].cost, 25);
}

}  // namespace
}  // namespace aid
