// Edge-case and robustness tests for the VM: error paths, unusual
// programs, and a small randomized stress sweep.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "predicates/extractor.h"
#include "runtime/vm.h"

namespace aid {
namespace {

Result<ExecutionTrace> RunProgram(const Program& program, uint64_t seed = 1) {
  Vm vm(&program);
  VmOptions options;
  options.seed = seed;
  return vm.Run(options);
}

TEST(VmEdgeTest, UnlockWithoutOwnershipFails) {
  ProgramBuilder b;
  b.Mutex("mu");
  b.Method("Main").Unlock("mu").Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->failed());
}

TEST(VmEdgeTest, JoinInvalidThreadIndexFails) {
  ProgramBuilder b;
  auto m = b.Method("Main");
  m.LoadConst(0, 99).Join(0).Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->failed());
}

TEST(VmEdgeTest, JoinFinishedThreadDoesNotBlock) {
  ProgramBuilder b;
  b.Method("Quick").Return();
  auto m = b.Method("Main");
  m.Spawn(0, "Quick").Delay(100).Join(0).Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(trace->failed());
}

TEST(VmEdgeTest, ArrayResizeShrinksAndGrows) {
  ProgramBuilder b;
  b.Array("arr", 8);
  auto m = b.Method("Main");
  m.LoadConst(0, 2)
      .ArrayResize("arr", 0)   // shrink to 2
      .ArrayLen(1, "arr")
      .LoadConst(2, 5)
      .ArrayResize("arr", 2)   // grow back to 5 (new cells zeroed)
      .LoadConst(3, 4)
      .ArrayLoad(4, "arr", 3)  // index 4: fresh zero
      .Add(5, 1, 4)
      .Return(5);              // 2 + 0
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(trace->failed());
}

TEST(VmEdgeTest, NegativeArrayIndexRaises) {
  ProgramBuilder b;
  b.Array("arr", 4);
  auto m = b.Method("Main");
  m.LoadConst(0, -1).ArrayLoad(1, "arr", 0).Return(1);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->failed());
  EXPECT_EQ(trace->failure_signature().exception_type,
            program->index_out_of_range());
}

TEST(VmEdgeTest, CatchInsideCatchNests) {
  ProgramBuilder b;
  b.Method("Deep").Throw("Inner");
  b.Method("Mid").CatchesExceptions(5).CallVoid("Deep").LoadConst(0, 1).Return(0);
  b.Method("Outer").CatchesExceptions(9).Call(0, "Mid").Return(0);
  b.Method("Main").Call(0, "Outer").Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(trace->failed());
  // Mid catches, returns its fallback 5; Outer returns 5 normally.
  bool outer_returned_5 = false;
  for (const Event& e : trace->events()) {
    if (e.kind == EventKind::kMethodExit &&
        e.method == program->method_names().Find("Outer") && e.has_value &&
        e.value == 5) {
      outer_returned_5 = true;
    }
  }
  EXPECT_TRUE(outer_returned_5);
}

TEST(VmEdgeTest, ManyThreads) {
  ProgramBuilder b;
  b.Global("sum", 0);
  b.Mutex("mu");
  {
    auto m = b.Method("Adder");
    m.Lock("mu")
        .LoadGlobal(0, "sum")
        .AddImm(1, 0, 1)
        .StoreGlobal("sum", 1)
        .Unlock("mu")
        .Return();
  }
  {
    auto m = b.Method("Main");
    for (int i = 0; i < 12; ++i) m.Spawn(i % 10, "Adder");
    // Join only the last few handles we still have registers for.
    m.Delay(5000).LoadGlobal(11, "sum").Return(11);
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(trace->failed());
  EXPECT_EQ(trace->thread_count(), 13);
}

TEST(VmEdgeTest, DelayRandSpansItsRange) {
  ProgramBuilder b;
  b.Method("Main").DelayRand(10, 20).Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  Tick min_seen = 1 << 30;
  Tick max_seen = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    auto trace = RunProgram(*program, seed);
    ASSERT_TRUE(trace.ok());
    min_seen = std::min(min_seen, trace->end_tick());
    max_seen = std::max(max_seen, trace->end_tick());
  }
  EXPECT_LE(min_seen, 15);
  EXPECT_GE(max_seen, 18);
}

// Randomized stress: straight-line multi-threaded programs with accesses,
// delays, locks, and occasional throws. Invariants: the VM always
// terminates with a well-formed trace (balanced frames), and the extractor
// never chokes on the resulting logs.
class VmFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(VmFuzzTest, RandomProgramsProduceWellFormedTraces) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 13);
  ProgramBuilder b;
  b.Global("x", 0);
  b.Global("y", 0);
  b.Mutex("mu");

  const int workers = static_cast<int>(rng.UniformRange(1, 4));
  for (int w = 0; w < workers; ++w) {
    auto m = b.Method("Worker" + std::to_string(w));
    const int steps = static_cast<int>(rng.UniformRange(2, 10));
    bool locked = false;
    for (int s = 0; s < steps; ++s) {
      switch (rng.Uniform(7)) {
        case 0:
          m.LoadGlobal(0, "x");
          break;
        case 1:
          m.LoadConst(0, static_cast<int64_t>(rng.Uniform(100)));
          m.StoreGlobal("y", 0);
          break;
        case 2:
          m.DelayRand(0, 12);
          break;
        case 3:
          if (!locked) {
            m.Lock("mu");
            locked = true;
          }
          break;
        case 4:
          if (locked) {
            m.Unlock("mu");
            locked = false;
          }
          break;
        case 5:
          m.LoadGlobal(0, "y").AddImm(1, 0, 1).StoreGlobal("x", 1);
          break;
        case 6:
          if (rng.Bernoulli(0.15)) m.ThrowIfZero(2, "FuzzCrash");
          break;
      }
    }
    if (locked) m.Unlock("mu");
    m.Return();
  }
  {
    auto m = b.Method("Main");
    for (int w = 0; w < workers; ++w) {
      m.Spawn(w, "Worker" + std::to_string(w));
    }
    for (int w = 0; w < workers; ++w) m.Join(w);
    m.Return();
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  std::vector<ExecutionTrace> traces;
  int failures = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    auto trace = RunProgram(*program, seed);
    ASSERT_TRUE(trace.ok()) << "seed " << seed;
    // Balanced frames: BuildMethodExecutions accepts every trace.
    auto execs = trace->BuildMethodExecutions();
    ASSERT_TRUE(execs.ok()) << "seed " << seed;
    for (const auto& exec : *execs) {
      EXPECT_GE(exec.exit_tick, exec.enter_tick);
    }
    failures += trace->failed() ? 1 : 0;
    traces.push_back(std::move(*trace));
  }
  // If both outcomes occurred, the extractor must digest the logs.
  if (failures > 0 && failures < 30) {
    PredicateExtractor extractor;
    EXPECT_TRUE(extractor.Observe(traces).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzzTest, ::testing::Range(1, 26));

}  // namespace
}  // namespace aid
