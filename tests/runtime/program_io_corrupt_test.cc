// Hostile-input regression tests for the program wire codec: truncated,
// bit-flipped, and semantically corrupt program bytes must come back as a
// Status error -- never a crash -- because both runner daemons
// (aid_subject_host, aid_runner) decode attacker-reachable bytes with this
// code path before ever forking a subject.

#include "runtime/program_io.h"

#include <gtest/gtest.h>

#include <string>

#include "common/logging.h"
#include "runtime/program.h"
#include "trace/serialize.h"

namespace aid {
namespace {

// A program exercising every declared-object kind, exceptions, threads,
// randomness, and control flow, so corruptions can target each validation
// rule.
Program BuildRichProgram() {
  ProgramBuilder b;
  b.Global("g", 5);
  b.Array("arr", 4);
  b.Mutex("m");
  b.Method("Worker")
      .Lock("m")
      .LoadGlobal(0, "g")
      .AddImm(0, 0, 1)
      .StoreGlobal("g", 0)
      .Unlock("m")
      .Return();
  b.Method("Helper").LoadConst(0, 2).ArrayLoad(1, "arr", 0).Return(1);
  auto main = b.Method("Main");
  main.Spawn(0, "Worker")
      .Call(1, "Helper")
      .Random(2, 10)
      .DelayRand(1, 3)
      .ThrowIfZero(3, "Boom");
  const size_t skip = main.JumpIfZeroPlaceholder(2);
  main.LoadConst(4, 1);
  main.PatchTarget(skip);
  main.Join(0).Return();
  auto program = b.Build("Main");
  AID_CHECK(program.ok());
  return std::move(*program);
}

MethodDef& MutableMethod(Program& program, std::string_view name) {
  const SymbolId id = program.method_names().Find(name);
  return const_cast<std::vector<MethodDef>&>(
      program.methods())[static_cast<size_t>(id)];
}

TEST(ProgramIoCorruptTest, RoundTripSurvivesAndRevalidates) {
  const Program program = BuildRichProgram();
  const std::string bytes = ProgramToBytes(program);
  auto decoded = ProgramFromBytes(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(ValidateProgram(*decoded).ok());
  // Decode -> re-encode is byte-identical (dense ids, ordered tables).
  EXPECT_EQ(ProgramToBytes(*decoded), bytes);
}

TEST(ProgramIoCorruptTest, EveryTruncationIsARejectedError) {
  const std::string bytes = ProgramToBytes(BuildRichProgram());
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = ProgramFromBytes(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(ProgramIoCorruptTest, EveryByteFlipIsHandledWithoutCrashing) {
  // Bit-flipped bytes may decode to a different-but-valid program (e.g. a
  // flipped initial value); the contract is "error or success, no crash,
  // and whatever decodes passes validation".
  const std::string pristine = ProgramToBytes(BuildRichProgram());
  for (size_t i = 0; i < pristine.size(); ++i) {
    std::string bytes = pristine;
    bytes[i] = static_cast<char>(~bytes[i]);
    auto decoded = ProgramFromBytes(bytes);
    if (decoded.ok()) {
      EXPECT_TRUE(ValidateProgram(*decoded).ok()) << "byte " << i;
    }
  }
}

TEST(ProgramIoCorruptTest, TrailingGarbageIsRejected) {
  std::string bytes = ProgramToBytes(BuildRichProgram());
  bytes += "extra";
  EXPECT_FALSE(ProgramFromBytes(bytes).ok());
}

TEST(ProgramIoCorruptTest, UnsupportedVersionIsRejected) {
  std::string bytes = ProgramToBytes(BuildRichProgram());
  bytes[0] = 99;  // format version lives in the leading u32
  const auto decoded = ProgramFromBytes(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
}

TEST(ProgramIoCorruptTest, OutOfRangeEntryIsRejected) {
  std::string bytes = ProgramToBytes(BuildRichProgram());
  bytes[4] = 0x7f;  // entry method id follows the version u32
  EXPECT_FALSE(ProgramFromBytes(bytes).ok());
}

TEST(ProgramIoCorruptTest, UnknownObjectKindByteIsRejected) {
  // Hand-written wire bytes: structurally well-formed except the object
  // kind byte, which no enum value covers.
  WireWriter w;
  w.U32(1);              // format version
  w.I32(0);              // entry = Main
  w.U32(1);              // method names
  w.Str("Main");
  w.U32(1);              // object names
  w.Str("g");
  w.U32(0);              // exception names
  w.U32(1);              // one method
  w.I32(0);
  w.Str("Main");
  w.U8(0);               // side_effect_free
  w.U8(0);               // catches_exceptions
  w.I64(0);              // catch_fallback
  w.U32(1);              // one instruction: return
  w.U8(static_cast<uint8_t>(Op::kReturn));
  w.I32(kNoReg);
  w.I32(kNoReg);
  w.I32(kNoReg);
  w.I32(kInvalidSymbol);
  w.I64(0);
  w.I64(0);
  w.I64(1);              // cost
  w.U32(1);              // one object declaration
  w.U8(9);               // not a known ObjectKind
  w.I64(0);
  w.U32(0);              // mutexes
  w.I32(kInvalidSymbol); // index_out_of_range
  w.I32(kInvalidSymbol); // deadlock
  const auto decoded = ProgramFromBytes(w.Release());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("ObjectKind"), std::string::npos);
}

// Semantic corruptions: mutate a valid in-memory program the way hostile
// bytes would present it, re-serialize, and require the decode path (which
// runs ValidateProgram) to reject it.
struct SemanticCorruption {
  const char* name;
  const char* expect_in_message;
  void (*apply)(Program&);
};

class SemanticCorruptionTest
    : public ::testing::TestWithParam<SemanticCorruption> {};

TEST_P(SemanticCorruptionTest, RejectedByDecode) {
  Program program = BuildRichProgram();
  GetParam().apply(program);
  const auto decoded = ProgramFromBytes(ProgramToBytes(program));
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find(GetParam().expect_in_message),
            std::string::npos)
      << decoded.status();
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, SemanticCorruptionTest,
    ::testing::Values(
        SemanticCorruption{"BadOpcode", "opcode",
                           [](Program& p) {
                             MutableMethod(p, "Main").code[0].op =
                                 static_cast<Op>(77);
                           }},
        SemanticCorruption{"BadRegister", "register",
                           [](Program& p) {
                             MutableMethod(p, "Helper").code[0].a = kNumRegs;
                           }},
        SemanticCorruption{"BadJumpTarget", "jump target",
                           [](Program& p) {
                             MutableMethod(p, "Main").code[5].imm = 1000;
                           }},
        SemanticCorruption{"UnknownCallee", "has no body",
                           [](Program& p) {
                             MutableMethod(p, "Main").code[1].imm = 50;
                           }},
        SemanticCorruption{"UndeclaredGlobal", "declared global",
                           [](Program& p) {
                             MutableMethod(p, "Worker").code[1].obj = 999;
                           }},
        SemanticCorruption{"GlobalUsedAsArray", "declared array",
                           [](Program& p) {
                             MutableMethod(p, "Helper").code[1].obj =
                                 p.object_names().Find("g");
                           }},
        SemanticCorruption{"UndeclaredMutex", "declared mutex",
                           [](Program& p) {
                             MutableMethod(p, "Worker").code[0].obj =
                                 p.object_names().Find("g");
                           }},
        SemanticCorruption{"BadExceptionSymbol", "exception symbol",
                           [](Program& p) {
                             MutableMethod(p, "Main").code[4].obj = 99;
                           }},
        SemanticCorruption{"ZeroRandomBound", "random bound",
                           [](Program& p) {
                             MutableMethod(p, "Main").code[2].imm = 0;
                           }},
        SemanticCorruption{"InvertedDelayRange", "delay range",
                           [](Program& p) {
                             auto& instr = MutableMethod(p, "Main").code[3];
                             instr.imm = 9;
                             instr.imm2 = 2;
                           }},
        SemanticCorruption{"NonPositiveCost", "cost",
                           [](Program& p) {
                             MutableMethod(p, "Worker").code[2].cost = 0;
                           }},
        SemanticCorruption{"MissingTerminator", "return/throw/jump",
                           [](Program& p) {
                             MutableMethod(p, "Helper").code.back().op =
                                 Op::kNop;
                           }},
        SemanticCorruption{"EmptyMethod", "no body",
                           [](Program& p) {
                             MutableMethod(p, "Worker").code.clear();
                           }},
        SemanticCorruption{"MethodIdMismatch", "dense",
                           [](Program& p) {
                             MutableMethod(p, "Worker").id = 7;
                           }}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace aid
