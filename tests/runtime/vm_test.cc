#include "runtime/vm.h"

#include <gtest/gtest.h>

#include "trace/serialize.h"

namespace aid {
namespace {

Result<ExecutionTrace> RunProgram(const Program& program, uint64_t seed = 1,
                                  const InterventionPlan* plan = nullptr) {
  Vm vm(&program);
  VmOptions options;
  options.seed = seed;
  return vm.Run(options, plan);
}

int64_t FinalReturn(const ExecutionTrace& trace, SymbolId method) {
  for (auto it = trace.events().rbegin(); it != trace.events().rend(); ++it) {
    if (it->kind == EventKind::kMethodExit && it->method == method &&
        it->has_value) {
      return it->value;
    }
  }
  ADD_FAILURE() << "no exit with value for method " << method;
  return -1;
}

TEST(VmTest, ArithmeticAndGlobals) {
  ProgramBuilder b;
  b.Global("g", 10);
  auto m = b.Method("Main");
  m.LoadGlobal(0, "g")       // 10
      .LoadConst(1, 4)
      .Add(2, 0, 1)          // 14
      .Sub(3, 2, 1)          // 10
      .Mul(4, 2, 3)          // 140
      .AddImm(5, 4, -40)     // 100
      .StoreGlobal("g", 5)
      .LoadGlobal(6, "g")
      .Return(6);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(trace->failed());
  EXPECT_EQ(FinalReturn(*trace, program->entry()), 100);
}

TEST(VmTest, ComparisonsAndJumps) {
  // Computes max(7, 12) via a conditional branch.
  ProgramBuilder b;
  auto m = b.Method("Main");
  m.LoadConst(0, 7).LoadConst(1, 12).CmpLt(2, 0, 1);
  const size_t take_b = m.JumpIfNonZeroPlaceholder(2);
  m.Return(0);
  m.PatchTarget(take_b);
  m.Return(1);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(FinalReturn(*trace, program->entry()), 12);
}

TEST(VmTest, LoopViaBackwardJump) {
  // Sums 1..5 with a loop.
  ProgramBuilder b;
  auto m = b.Method("Main");
  m.LoadConst(0, 0);  // sum
  m.LoadConst(1, 5);  // i
  const size_t top = m.Here();
  m.Add(0, 0, 1);            // sum += i
  m.AddImm(1, 1, -1);        // --i
  m.JumpIfNonZeroTo(1, top);
  m.Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(FinalReturn(*trace, program->entry()), 15);
}

TEST(VmTest, NestedCallsPropagateReturnValues) {
  ProgramBuilder b;
  b.Method("Leaf").LoadConst(0, 21).Return(0);
  b.Method("Mid").Call(0, "Leaf").AddImm(1, 0, 21).Return(1);
  b.Method("Main").Call(0, "Mid").Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(FinalReturn(*trace, program->entry()), 42);
}

TEST(VmTest, ArrayOperations) {
  ProgramBuilder b;
  b.Array("arr", 4);
  auto m = b.Method("Main");
  m.ArrayLen(0, "arr")        // 4
      .LoadConst(1, 2)
      .LoadConst(2, 99)
      .ArrayStore("arr", 1, 2)
      .ArrayLoad(3, "arr", 1)  // 99
      .LoadConst(4, 8)
      .ArrayResize("arr", 4)
      .ArrayLen(5, "arr")      // 8
      .Add(6, 3, 5)
      .Return(6);              // 107
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(FinalReturn(*trace, program->entry()), 107);
}

TEST(VmTest, ArrayOutOfBoundsRaisesAndFailsRun) {
  ProgramBuilder b;
  b.Array("arr", 2);
  auto m = b.Method("Main");
  m.LoadConst(0, 5).ArrayLoad(1, "arr", 0).Return(1);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->failed());
  EXPECT_EQ(trace->failure_signature().exception_type,
            program->index_out_of_range());
}

TEST(VmTest, ThrowAndMethodLevelCatch) {
  ProgramBuilder b;
  b.Method("Risky").Throw("Boom");
  b.Method("Guard").CatchesExceptions(-7).CallVoid("Risky").LoadConst(0, 1).Return(0);
  b.Method("Main").Call(0, "Guard").Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(trace->failed());  // contained
  // Guard returns its fallback, not its normal value.
  EXPECT_EQ(FinalReturn(*trace, program->entry()), -7);
}

TEST(VmTest, UncaughtThrowCarriesSignatureOfOrigin) {
  ProgramBuilder b;
  b.Method("Deep").Throw("Kaboom");
  b.Method("Main").CallVoid("Deep").Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->failed());
  EXPECT_EQ(trace->failure_signature().method,
            program->method_names().Find("Deep"));
  EXPECT_EQ(trace->failure_signature().exception_type,
            program->exception_names().Find("Kaboom"));
}

TEST(VmTest, ThrowIfVariants) {
  ProgramBuilder b;
  auto m = b.Method("Main");
  m.LoadConst(0, 0)
      .ThrowIfNonZero(0, "NotTaken")  // 0: no throw
      .LoadConst(1, 3)
      .ThrowIfZero(1, "NotTakenEither")  // 3: no throw
      .ThrowIfNonZero(1, "Taken")        // throws
      .Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->failed());
  EXPECT_EQ(trace->failure_signature().exception_type,
            program->exception_names().Find("Taken"));
}

TEST(VmTest, SpawnAndJoinRunToCompletion) {
  ProgramBuilder b;
  b.Global("done", 0);
  b.Method("Child").LoadConst(0, 1).StoreGlobal("done", 0).Return();
  auto m = b.Method("Main");
  m.Spawn(0, "Child").Join(0).LoadGlobal(1, "done").Return(1);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(trace->failed());
  EXPECT_EQ(FinalReturn(*trace, program->entry()), 1);
  EXPECT_EQ(trace->thread_count(), 2);
}

TEST(VmTest, DelayAdvancesVirtualTime) {
  ProgramBuilder b;
  b.Method("Main").Delay(500).Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_GE(trace->end_tick(), 500);
  EXPECT_LT(trace->end_tick(), 520);  // small instruction overhead only
}

TEST(VmTest, ConcurrentDelaysOverlapInVirtualTime) {
  // Two threads each sleeping 100 ticks finish in ~100, not ~200.
  ProgramBuilder b;
  b.Method("Sleeper").Delay(100).Return();
  auto m = b.Method("Main");
  m.Spawn(0, "Sleeper").Spawn(1, "Sleeper").Join(0).Join(1).Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_LT(trace->end_tick(), 150);
}

TEST(VmTest, MutexProvidesMutualExclusion) {
  // Two threads do lock-protected read-modify-write with an internal delay;
  // without the lock the final count would often be 1.
  ProgramBuilder b;
  b.Global("count", 0);
  b.Mutex("mu");
  {
    auto m = b.Method("Incr");
    m.Lock("mu")
        .LoadGlobal(0, "count")
        .Delay(5)
        .AddImm(1, 0, 1)
        .StoreGlobal("count", 1)
        .Unlock("mu")
        .Return();
  }
  {
    auto m = b.Method("Main");
    m.Spawn(0, "Incr").Spawn(1, "Incr").Join(0).Join(1).LoadGlobal(2, "count").Return(2);
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    auto trace = RunProgram(*program, seed);
    ASSERT_TRUE(trace.ok());
    EXPECT_EQ(FinalReturn(*trace, program->entry()), 2) << "seed " << seed;
  }
}

TEST(VmTest, UnprotectedRmwLosesUpdatesOnSomeSeeds) {
  ProgramBuilder b;
  b.Global("count", 0);
  {
    auto m = b.Method("Incr");
    m.LoadGlobal(0, "count").Delay(5).AddImm(1, 0, 1).StoreGlobal("count", 1).Return();
  }
  {
    auto m = b.Method("Main");
    m.Spawn(0, "Incr").Spawn(1, "Incr").Join(0).Join(1).LoadGlobal(2, "count").Return(2);
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  int lost = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    auto trace = RunProgram(*program, seed);
    ASSERT_TRUE(trace.ok());
    if (FinalReturn(*trace, program->entry()) == 1) ++lost;
  }
  EXPECT_GT(lost, 0);  // the race manifests on at least one interleaving
}

TEST(VmTest, DeadlockIsDetectedAndFailsRun) {
  ProgramBuilder b;
  b.Mutex("a");
  b.Mutex("b");
  {
    auto m = b.Method("T1");
    m.Lock("a").Delay(10).Lock("b").Unlock("b").Unlock("a").Return();
  }
  {
    auto m = b.Method("T2");
    m.Lock("b").Delay(10).Lock("a").Unlock("a").Unlock("b").Return();
  }
  {
    auto m = b.Method("Main");
    m.Spawn(0, "T1").Spawn(1, "T2").Join(0).Join(1).Return();
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  int deadlocks = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    auto trace = RunProgram(*program, seed);
    ASSERT_TRUE(trace.ok());
    if (trace->failed() &&
        trace->failure_signature().exception_type == program->deadlock()) {
      ++deadlocks;
    }
  }
  EXPECT_GT(deadlocks, 0);
}

TEST(VmTest, ReentrantLockDoesNotSelfDeadlock) {
  ProgramBuilder b;
  b.Mutex("mu");
  b.Method("Inner").Lock("mu").Unlock("mu").Return();
  b.Method("Main").Lock("mu").CallVoid("Inner").Unlock("mu").Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(trace->failed());
}

TEST(VmTest, SameSeedSameTraceDifferentSeedsDiffer) {
  ProgramBuilder b;
  b.Global("x", 0);
  {
    auto m = b.Method("W");
    m.DelayRand(1, 30).LoadConst(0, 7).StoreGlobal("x", 0).Return();
  }
  {
    auto m = b.Method("Main");
    m.Spawn(0, "W").Spawn(1, "W").Join(0).Join(1).Return();
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  auto t1 = RunProgram(*program, 42);
  auto t2 = RunProgram(*program, 42);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_EQ(t1->events().size(), t2->events().size());
  for (size_t i = 0; i < t1->events().size(); ++i) {
    EXPECT_EQ(t1->events()[i].tick, t2->events()[i].tick);
    EXPECT_EQ(t1->events()[i].thread, t2->events()[i].thread);
    EXPECT_EQ(t1->events()[i].kind, t2->events()[i].kind);
  }

  // Some other seed yields a different interleaving (event count or ticks).
  bool any_differs = false;
  for (uint64_t seed = 43; seed < 53 && !any_differs; ++seed) {
    auto t3 = RunProgram(*program, seed);
    ASSERT_TRUE(t3.ok());
    if (t3->events().size() != t1->events().size()) {
      any_differs = true;
      break;
    }
    for (size_t i = 0; i < t1->events().size(); ++i) {
      if (t3->events()[i].tick != t1->events()[i].tick ||
          t3->events()[i].thread != t1->events()[i].thread) {
        any_differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(VmTest, RunawayLoopAborts) {
  ProgramBuilder b;
  auto m = b.Method("Main");
  const size_t top = m.Here();
  m.LoadConst(0, 1);
  m.JumpTo(top);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  Vm vm(&*program);
  VmOptions options;
  options.seed = 1;
  options.max_steps = 1000;
  auto trace = vm.Run(options);
  ASSERT_FALSE(trace.ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kAborted);
}

TEST(VmTest, RandomIsPerThreadDeterministic) {
  // The same thread draws the same random values regardless of what other
  // threads do -- the property interventions rely on.
  ProgramBuilder b;
  b.Global("a", -1);
  {
    auto m = b.Method("Draw");
    m.Random(0, 1000).StoreGlobal("a", 0).Return(0);
  }
  {
    auto m = b.Method("Main");
    m.Spawn(0, "Draw").Join(0).LoadGlobal(1, "a").Return(1);
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto t1 = RunProgram(*program, 5);
  ASSERT_TRUE(t1.ok());
  const int64_t v1 = FinalReturn(*t1, program->entry());

  // Same seed, but with an intervention plan that perturbs scheduling.
  InterventionPlan plan;
  VmAction delay;
  delay.kind = VmActionKind::kDelayAtEnter;
  delay.method = program->method_names().Find("Draw");
  delay.ticks = 13;
  plan.Add(delay);
  auto t2 = RunProgram(*program, 5, &plan);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(FinalReturn(*t2, program->entry()), v1);
}

TEST(VmTest, StopOnFailureFreezesOtherThreads) {
  ProgramBuilder b;
  b.Method("Crasher").Delay(5).Throw("Bang");
  b.Method("Sleeper").Delay(100000).Return();
  auto m = b.Method("Main");
  m.Spawn(0, "Crasher").Spawn(1, "Sleeper").Join(0).Join(1).Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  auto trace = RunProgram(*program);
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->failed());
  EXPECT_LT(trace->end_tick(), 1000);  // did not wait for the sleeper
}

}  // namespace
}  // namespace aid
