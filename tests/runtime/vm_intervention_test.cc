// End-to-end tests of every VM-level fault-injection action (the paper's
// Figure 2, column 3 mechanisms).

#include <gtest/gtest.h>

#include "runtime/intervention.h"
#include "runtime/vm.h"

namespace aid {
namespace {

Result<ExecutionTrace> RunProgram(const Program& program, uint64_t seed,
                                  const InterventionPlan* plan) {
  Vm vm(&program);
  VmOptions options;
  options.seed = seed;
  return vm.Run(options, plan);
}

int64_t FinalReturn(const ExecutionTrace& trace, SymbolId method) {
  for (auto it = trace.events().rbegin(); it != trace.events().rend(); ++it) {
    if (it->kind == EventKind::kMethodExit && it->method == method &&
        it->has_value) {
      return it->value;
    }
  }
  return -999;
}

TEST(VmInterventionTest, SerializeMethodsRemovesLostUpdate) {
  ProgramBuilder b;
  b.Global("count", 0);
  {
    auto m = b.Method("Incr");
    m.LoadGlobal(0, "count").Delay(5).AddImm(1, 0, 1).StoreGlobal("count", 1).Return();
  }
  {
    auto m = b.Method("Main");
    m.Spawn(0, "Incr").Spawn(1, "Incr").Join(0).Join(1).LoadGlobal(2, "count").Return(2);
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  VmAction action;
  action.kind = VmActionKind::kSerializeMethods;
  action.method = program->method_names().Find("Incr");
  action.method2 = action.method;
  action.mutex = InterventionMutexId(0);
  InterventionPlan plan;
  plan.Add(action);

  for (uint64_t seed = 1; seed <= 25; ++seed) {
    auto trace = RunProgram(*program, seed, &plan);
    ASSERT_TRUE(trace.ok());
    EXPECT_EQ(FinalReturn(*trace, program->entry()), 2) << "seed " << seed;
  }
}

TEST(VmInterventionTest, CatchExceptionsContainsFailure) {
  ProgramBuilder b;
  b.Method("Risky").Throw("Boom");
  b.Method("Main").Call(0, "Risky").Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  // Without the plan: crash.
  auto bare = RunProgram(*program, 1, nullptr);
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->failed());

  VmAction action;
  action.kind = VmActionKind::kCatchExceptions;
  action.method = program->method_names().Find("Risky");
  action.value = 55;
  action.has_value = true;
  InterventionPlan plan;
  plan.Add(action);

  auto repaired = RunProgram(*program, 1, &plan);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->failed());
  EXPECT_EQ(FinalReturn(*repaired, program->entry()), 55);
}

TEST(VmInterventionTest, DelayBeforeReturnStretchesDuration) {
  ProgramBuilder b;
  b.Method("Fast").LoadConst(0, 1).Return(0);
  b.Method("Main").Call(0, "Fast").Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  VmAction action;
  action.kind = VmActionKind::kDelayBeforeReturn;
  action.method = program->method_names().Find("Fast");
  action.ticks = 200;
  InterventionPlan plan;
  plan.Add(action);

  auto bare = RunProgram(*program, 1, nullptr);
  auto slowed = RunProgram(*program, 1, &plan);
  ASSERT_TRUE(bare.ok());
  ASSERT_TRUE(slowed.ok());
  EXPECT_GE(slowed->end_tick(), bare->end_tick() + 200);
  // The return value is unaffected.
  EXPECT_EQ(FinalReturn(*slowed, program->entry()), 1);
}

TEST(VmInterventionTest, PrematureReturnSkipsBodyAndSuppliesValue) {
  ProgramBuilder b;
  b.Global("touched", 0);
  {
    auto m = b.Method("Slow");
    m.Delay(500).LoadConst(0, 1).StoreGlobal("touched", 0).LoadConst(1, 9).Return(1);
  }
  b.Method("Main").Call(0, "Slow").LoadGlobal(1, "touched").Add(2, 0, 1).Return(2);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  VmAction action;
  action.kind = VmActionKind::kPrematureReturn;
  action.method = program->method_names().Find("Slow");
  action.ticks = 10;
  action.value = 9;
  action.has_value = true;
  InterventionPlan plan;
  plan.Add(action);

  auto trace = RunProgram(*program, 1, &plan);
  ASSERT_TRUE(trace.ok());
  EXPECT_LT(trace->end_tick(), 100);  // body (and its 500-tick delay) skipped
  // Return value supplied (9), body side effect skipped (touched stays 0).
  EXPECT_EQ(FinalReturn(*trace, program->entry()), 9);
}

TEST(VmInterventionTest, ForceReturnValueOverridesComputedResult) {
  ProgramBuilder b;
  b.Method("Compute").LoadConst(0, 3).Return(0);
  b.Method("Main").Call(0, "Compute").Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  VmAction action;
  action.kind = VmActionKind::kForceReturnValue;
  action.method = program->method_names().Find("Compute");
  action.value = 77;
  action.has_value = true;
  InterventionPlan plan;
  plan.Add(action);

  auto trace = RunProgram(*program, 1, &plan);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(FinalReturn(*trace, program->entry()), 77);
}

TEST(VmInterventionTest, EnforceOrderBlocksUntilPrerequisiteExits) {
  // Without intervention Reader often starts before Writer finishes;
  // with kEnforceOrder it always waits.
  ProgramBuilder b;
  b.Global("ready", 0);
  {
    auto m = b.Method("Writer");
    m.Delay(50).LoadConst(0, 1).StoreGlobal("ready", 0).Return();
  }
  {
    auto m = b.Method("Reader");
    m.LoadGlobal(0, "ready").Return(0);
  }
  {
    auto m = b.Method("Main");
    m.Spawn(0, "W2").Spawn(1, "R2").Join(0).Join(1).Return();
  }
  b.Method("W2").CallVoid("Writer").Return();
  b.Method("R2").Call(0, "Reader").Return(0);
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  VmAction action;
  action.kind = VmActionKind::kEnforceOrder;
  action.method = program->method_names().Find("Reader");
  action.method2 = program->method_names().Find("Writer");
  InterventionPlan plan;
  plan.Add(action);

  for (uint64_t seed = 1; seed <= 15; ++seed) {
    auto trace = RunProgram(*program, seed, &plan);
    ASSERT_TRUE(trace.ok());
    EXPECT_EQ(FinalReturn(*trace, program->method_names().Find("Reader")), 1)
        << "seed " << seed;
  }
}

TEST(VmInterventionTest, ForceReturnDistinctBreaksCollision) {
  ProgramBuilder b;
  b.Method("A").LoadConst(0, 5).Return(0);
  b.Method("B").LoadConst(0, 5).Return(0);
  {
    auto m = b.Method("Main");
    m.Call(0, "A").Call(1, "B").CmpEq(2, 0, 1).ThrowIfNonZero(2, "Collision").Return();
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  auto bare = RunProgram(*program, 1, nullptr);
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->failed());

  VmAction action;
  action.kind = VmActionKind::kForceReturnDistinct;
  action.method = program->method_names().Find("B");
  action.method2 = program->method_names().Find("A");
  InterventionPlan plan;
  plan.Add(action);

  auto repaired = RunProgram(*program, 1, &plan);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->failed());
}

TEST(VmInterventionTest, OccurrenceFilteredActionAppliesToExactExecution) {
  // Only the 2nd execution of Get is forced; the 1st keeps its value.
  ProgramBuilder b;
  b.Method("Get").LoadConst(0, 1).Return(0);
  {
    auto m = b.Method("Main");
    m.Call(0, "Get").Call(1, "Get").LoadConst(2, 10).Mul(3, 0, 2).Add(4, 3, 1).Return(4);
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  VmAction action;
  action.kind = VmActionKind::kForceReturnValue;
  action.method = program->method_names().Find("Get");
  action.occurrence = 2;
  action.value = 4;
  action.has_value = true;
  InterventionPlan plan;
  plan.Add(action);

  auto trace = RunProgram(*program, 1, &plan);
  ASSERT_TRUE(trace.ok());
  // 1*10 + 4 = 14 (first execution untouched, second forced to 4).
  EXPECT_EQ(FinalReturn(*trace, program->entry()), 14);
}

TEST(VmInterventionTest, PlanMatchingHonorsSerializeEitherMethod) {
  InterventionPlan plan;
  VmAction action;
  action.kind = VmActionKind::kSerializeMethods;
  action.method = 3;
  action.method2 = 9;
  action.mutex = InterventionMutexId(1);
  plan.Add(action);

  int hits = 0;
  plan.ForEachMatching(VmActionKind::kSerializeMethods, 3, 1,
                       [&](const VmAction&) { ++hits; });
  plan.ForEachMatching(VmActionKind::kSerializeMethods, 9, 4,
                       [&](const VmAction&) { ++hits; });
  plan.ForEachMatching(VmActionKind::kSerializeMethods, 5, 1,
                       [&](const VmAction&) { ++hits; });
  EXPECT_EQ(hits, 2);
}

}  // namespace
}  // namespace aid
