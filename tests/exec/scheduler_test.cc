// Tests of the latency-aware work-stealing scheduler (exec/scheduler.h):
// bit-identical reports vs serial dispatch at 1/2/4/8 workers with one
// replica artificially 10x slower, steal-counter accounting, fail-fast
// error-path accounting (the serial contract), chunking/validation units,
// and parity between the static and work-stealing policies.

#include "exec/scheduler.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "exec/parallel_target.h"
#include "exec/replicable.h"
#include "synth/flaky_target.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

std::unique_ptr<GroundTruthModel> MakeApp(uint64_t seed = 7) {
  SyntheticAppOptions options;
  options.max_threads = 12;
  options.seed = seed;
  auto model = GenerateSyntheticApp(options);
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(*model);
}

/// A flaky target whose FIRST clone is the pool's straggler: every trial on
/// it charges `slow_per_trial` of wall clock. Positional nondeterminism is
/// untouched (the delay happens outside the flip), so however the scheduler
/// routes around the straggler, the bytes cannot change.
class HeteroTarget : public ReplicableTarget {
 public:
  HeteroTarget(const GroundTruthModel* model, double manifest_probability,
               uint64_t seed, std::chrono::microseconds slow_per_trial)
      : inner_(model, manifest_probability, seed),
        model_(model),
        manifest_probability_(manifest_probability),
        seed_(seed),
        slow_per_trial_(slow_per_trial),
        clones_(std::make_shared<std::atomic<int>>(0)) {}

  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override {
    if (delay_.count() > 0) {
      std::this_thread::sleep_for(delay_ * (trials < 1 ? 1 : trials));
    }
    return inner_.RunIntervened(intervened, trials);
  }

  Result<std::unique_ptr<ReplicableTarget>> Clone() const override {
    auto clone = std::unique_ptr<HeteroTarget>(new HeteroTarget(
        model_, manifest_probability_, seed_, slow_per_trial_));
    clone->clones_ = clones_;
    clone->delay_ = clones_->fetch_add(1) == 0
                        ? slow_per_trial_
                        : std::chrono::microseconds{0};
    clone->inner_.SeekTrial(inner_.trial_position());
    return std::unique_ptr<ReplicableTarget>(std::move(clone));
  }

  void SeekTrial(uint64_t trial_index) override {
    inner_.SeekTrial(trial_index);
  }
  uint64_t trial_position() const override { return inner_.trial_position(); }
  uint64_t executions() const override { return inner_.executions(); }

 private:
  FlakyModelTarget inner_;
  const GroundTruthModel* model_;
  double manifest_probability_;
  uint64_t seed_;
  std::chrono::microseconds slow_per_trial_;
  std::chrono::microseconds delay_{0};
  std::shared_ptr<std::atomic<int>> clones_;
};

// --- validation -----------------------------------------------------------

TEST(SchedulerOptionsTest, ValidatesKnobRanges) {
  EXPECT_TRUE(ValidateSchedulerOptions({}).ok());
  SchedulerOptions options;
  options.chunks_per_worker = 0;
  EXPECT_EQ(ValidateSchedulerOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.min_chunk_trials = 0;
  EXPECT_EQ(ValidateSchedulerOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.ewma_alpha = 0.0;
  EXPECT_EQ(ValidateSchedulerOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.ewma_alpha = 1.5;
  EXPECT_EQ(ValidateSchedulerOptions(options).code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.ewma_alpha = 1.0;  // boundary is legal (latest sample only)
  EXPECT_TRUE(ValidateSchedulerOptions(options).ok());
}

// --- chunking units -------------------------------------------------------

TEST(ChunkSchedulerTest, ChunksCoverEverySerialPositionExactlyOnce) {
  ChunkScheduler scheduler({}, /*replica_count=*/4);
  InterventionSpans spans(5);
  const int trials = 7;
  const uint64_t base = 100;
  const auto chunks = scheduler.MakeChunks(spans, trials, base);
  // Every (span, trial) position appears exactly once, at the serial
  // offset, and chunks never cross span boundaries.
  std::vector<int> seen(spans.size() * trials, 0);
  for (const auto& chunk : chunks) {
    ASSERT_NE(chunk.span, nullptr);
    const size_t span_index = chunk.result_index;
    EXPECT_EQ(chunk.span, &spans[span_index]);
    EXPECT_EQ(chunk.first_trial,
              base + span_index * trials + chunk.log_offset);
    for (int t = 0; t < chunk.trials; ++t) {
      ++seen[span_index * trials + chunk.log_offset + t];
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(ChunkSchedulerTest, StaticPolicyCutsOneSharePerWorker) {
  SchedulerOptions options;
  options.policy = SchedulerPolicy::kStatic;
  ChunkScheduler scheduler(options, /*replica_count=*/4);
  InterventionSpans one_span(1);
  const auto chunks = scheduler.MakeChunks(one_span, /*trials=*/100, 0);
  EXPECT_EQ(chunks.size(), 4u);  // ceil(100/4) = 25 trials per chunk
  for (const auto& chunk : chunks) EXPECT_EQ(chunk.trials, 25);
}

TEST(ChunkSchedulerTest, WorkStealingCutsFinerChunks) {
  SchedulerOptions options;
  options.chunks_per_worker = 4;
  ChunkScheduler scheduler(options, /*replica_count=*/4);
  InterventionSpans one_span(1);
  const auto chunks = scheduler.MakeChunks(one_span, /*trials=*/160, 0);
  EXPECT_EQ(chunks.size(), 16u);  // 4 workers x 4 chunks each
}

TEST(ChunkSchedulerTest, MinChunkTrialsFloorsTheGranularity) {
  SchedulerOptions options;
  options.min_chunk_trials = 50;
  ChunkScheduler scheduler(options, /*replica_count=*/8);
  InterventionSpans one_span(1);
  const auto chunks = scheduler.MakeChunks(one_span, /*trials=*/100, 0);
  EXPECT_EQ(chunks.size(), 2u);
}

// --- whole-engine determinism with a straggler ----------------------------

void ExpectSameReport(const DiscoveryReport& a, const DiscoveryReport& b) {
  EXPECT_TRUE(SameDiscoveryOutcome(a, b));
  EXPECT_EQ(a.causal_path, b.causal_path);
  EXPECT_EQ(a.spurious, b.spurious);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.speculative_executions, b.speculative_executions);
  EXPECT_EQ(a.path_is_chain, b.path_is_chain);
}

TEST(SchedulerDeterminismTest, SlowReplicaReportsAreBitIdenticalToSerial) {
  std::unique_ptr<GroundTruthModel> model = MakeApp(/*seed=*/21);
  auto dag = model->BuildAcDag();
  ASSERT_TRUE(dag.ok()) << dag.status();

  EngineOptions options = EngineOptions::Linear();
  options.trials_per_intervention = 3;
  options.batched_dispatch = true;

  // Serial reference (no pool at all).
  FlakyModelTarget serial(model.get(), /*manifest_probability=*/0.7,
                          /*seed=*/11);
  CausalPathDiscovery serial_discovery(&*dag, &serial, options);
  auto serial_report = serial_discovery.Run();
  ASSERT_TRUE(serial_report.ok()) << serial_report.status();

  for (int workers : {1, 2, 4, 8}) {
    // Replica 0 is ~10x a normal trial's cost on this machine: plenty to
    // force steals, far too little to slow the suite.
    HeteroTarget primary(model.get(), 0.7, 11,
                         std::chrono::microseconds(300));
    auto pool = ParallelTarget::Create(&primary, workers);
    ASSERT_TRUE(pool.ok()) << pool.status();
    EngineOptions parallel = options;
    parallel.parallelism = workers;
    CausalPathDiscovery discovery(&*dag, pool->get(), parallel);
    auto report = discovery.Run();
    ASSERT_TRUE(report.ok()) << report.status();
    ExpectSameReport(*report, *serial_report);

    // The dispatch accounting is exact: per-replica trials sum to the
    // executions the engine billed, whatever the steal schedule did.
    ASSERT_EQ(report->replica_trials.size(),
              static_cast<size_t>(workers));
    const uint64_t dispatched =
        std::accumulate(report->replica_trials.begin(),
                        report->replica_trials.end(), uint64_t{0});
    EXPECT_EQ(dispatched, report->executions);
  }
}

TEST(SchedulerDeterminismTest, StaticAndStealingPoliciesAgreeByteForByte) {
  std::unique_ptr<GroundTruthModel> model = MakeApp(/*seed=*/5);
  auto dag = model->BuildAcDag();
  ASSERT_TRUE(dag.ok()) << dag.status();

  EngineOptions options = EngineOptions::Linear();
  options.trials_per_intervention = 2;
  options.batched_dispatch = true;
  options.parallelism = 4;

  auto run = [&](SchedulerPolicy policy) -> Result<DiscoveryReport> {
    FlakyModelTarget primary(model.get(), 0.6, 3);
    SchedulerOptions scheduler;
    scheduler.policy = policy;
    AID_ASSIGN_OR_RETURN(std::unique_ptr<ParallelTarget> pool,
                         ParallelTarget::Create(&primary, 4, scheduler));
    CausalPathDiscovery discovery(&*dag, pool.get(), options);
    return discovery.Run();
  };

  auto stealing = run(SchedulerPolicy::kWorkStealing);
  ASSERT_TRUE(stealing.ok()) << stealing.status();
  auto fixed = run(SchedulerPolicy::kStatic);
  ASSERT_TRUE(fixed.ok()) << fixed.status();
  ExpectSameReport(*stealing, *fixed);
}

// --- steal accounting -----------------------------------------------------

TEST(SchedulerStealTest, FastReplicasStealFromTheStraggler) {
  GroundTruthModel model;
  model.AddFailure();
  PredicateId p = model.AddPredicate(0);
  model.SetCausalChain({p});

  // 2 workers, replica 0 is the straggler, plenty of chunks: worker 1 must
  // drain chunks queued behind replica 0.
  HeteroTarget primary(&model, /*manifest_probability=*/0.5, /*seed=*/9,
                       std::chrono::microseconds(500));
  SchedulerOptions scheduler;
  scheduler.chunks_per_worker = 8;
  auto pool = ParallelTarget::Create(&primary, 2, scheduler);
  ASSERT_TRUE(pool.ok()) << pool.status();

  // Serial reference for the bytes.
  FlakyModelTarget serial(&model, 0.5, 9);
  auto expected = serial.RunIntervened({}, 64);
  ASSERT_TRUE(expected.ok());

  auto got = (*pool)->RunIntervened({}, 64);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(got->logs.size(), expected->logs.size());
  for (size_t i = 0; i < got->logs.size(); ++i) {
    EXPECT_EQ(got->logs[i].failed, expected->logs[i].failed) << "log " << i;
  }

  const DispatchStats stats = (*pool)->dispatch_stats();
  ASSERT_EQ(stats.replica_trials.size(), 2u);
  EXPECT_EQ(stats.replica_trials[0] + stats.replica_trials[1], 64u);
  EXPECT_GE(stats.steals, 1u);
  // The fast replica carried more than the straggler.
  EXPECT_GT(stats.replica_trials[1], stats.replica_trials[0]);
  // Both replicas have latency estimates now, and the straggler's is
  // visibly larger.
  EXPECT_GT((*pool)->replica_ewma_micros(0), 0u);
  EXPECT_GT((*pool)->replica_ewma_micros(1), 0u);
  EXPECT_GT((*pool)->replica_ewma_micros(0),
            (*pool)->replica_ewma_micros(1));
}

TEST(SchedulerStealTest, StaticPolicyNeverSteals) {
  GroundTruthModel model;
  model.AddFailure();
  PredicateId p = model.AddPredicate(0);
  model.SetCausalChain({p});

  HeteroTarget primary(&model, 0.5, 9, std::chrono::microseconds(300));
  SchedulerOptions scheduler;
  scheduler.policy = SchedulerPolicy::kStatic;
  auto pool = ParallelTarget::Create(&primary, 2, scheduler);
  ASSERT_TRUE(pool.ok()) << pool.status();
  auto got = (*pool)->RunIntervened({}, 32);
  ASSERT_TRUE(got.ok()) << got.status();

  const DispatchStats stats = (*pool)->dispatch_stats();
  EXPECT_EQ(stats.steals, 0u);
  // The fixed contiguous split: both replicas got exactly half.
  ASSERT_EQ(stats.replica_trials.size(), 2u);
  EXPECT_EQ(stats.replica_trials[0], 16u);
  EXPECT_EQ(stats.replica_trials[1], 16u);
}

// --- fail-fast error paths (the serial accounting contract) ---------------

/// Fails any span intervening on the model's failure predicate; everything
/// else passes through. SeekTrial/positions pass through too, so cursor
/// behavior on error paths is observable.
class PoisonTarget : public ReplicableTarget {
 public:
  PoisonTarget(const GroundTruthModel* model, double p, uint64_t seed)
      : model_(model), p_(p), seed_(seed), inner_(model, p, seed) {}

  Result<TargetRunResult> RunIntervened(
      const std::vector<PredicateId>& intervened, int trials) override {
    if (!intervened.empty() && intervened.front() == model_->failure()) {
      return Status::Internal("cannot intervene on F");
    }
    return inner_.RunIntervened(intervened, trials);
  }
  Result<std::unique_ptr<ReplicableTarget>> Clone() const override {
    auto clone = std::unique_ptr<PoisonTarget>(
        new PoisonTarget(model_, p_, seed_));
    clone->inner_.SeekTrial(inner_.trial_position());
    return std::unique_ptr<ReplicableTarget>(std::move(clone));
  }
  void SeekTrial(uint64_t trial_index) override {
    inner_.SeekTrial(trial_index);
  }
  uint64_t trial_position() const override { return inner_.trial_position(); }
  uint64_t executions() const override { return inner_.executions(); }

 private:
  const GroundTruthModel* model_;
  double p_;
  uint64_t seed_;
  FlakyModelTarget inner_;
};

TEST(SchedulerFailFastTest, MidBatchFailureCancelsUnleasedChunks) {
  std::unique_ptr<GroundTruthModel> model = MakeApp(/*seed=*/3);

  // One worker makes execution order deterministic: chunks run serially,
  // so everything after the poisoned span must be cancelled, never run,
  // and never billed -- exactly what serial dispatch would have done.
  PoisonTarget primary(model.get(), 1.0, 1);
  auto pool = ParallelTarget::Create(&primary, 1);
  ASSERT_TRUE(pool.ok()) << pool.status();

  InterventionSpans spans;
  const std::vector<PredicateId> preds = model->predicates();
  ASSERT_GE(preds.size(), 4u);
  const size_t poison_index = 2;
  for (size_t i = 0; i < 8; ++i) {
    if (i == poison_index) {
      spans.push_back({model->failure()});  // the poisoned span
    } else {
      spans.push_back({preds[i % preds.size()]});
    }
  }
  const int trials = 3;

  auto result = (*pool)->RunInterventionsBatch(spans, trials);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);

  // Serial accounting: only the spans before the poison executed (the
  // poisoned span failed before running anything). Pre-fix, every span of
  // the batch kept executing and billing after the failure.
  EXPECT_EQ((*pool)->executions(),
            static_cast<uint64_t>(poison_index) * trials);
  const DispatchStats stats = (*pool)->dispatch_stats();
  EXPECT_EQ(stats.cancelled_chunks, spans.size() - poison_index - 1);

  // The trial cursor did not commit: the next (successful) dispatch runs
  // the positions serial dispatch would run after its failure -- i.e. the
  // same base the failed round started at.
  FlakyModelTarget serial(model.get(), 1.0, 1);
  auto expected = serial.RunIntervened({preds[0]}, trials);
  ASSERT_TRUE(expected.ok());
  auto retry = (*pool)->RunIntervened({preds[0]}, trials);
  ASSERT_TRUE(retry.ok()) << retry.status();
  ASSERT_EQ(retry->logs.size(), expected->logs.size());
  for (size_t i = 0; i < retry->logs.size(); ++i) {
    EXPECT_EQ(retry->logs[i].failed, expected->logs[i].failed) << "log " << i;
  }
}

TEST(SchedulerFailFastTest, ParallelFailureStillReturnsEarliestObservedError) {
  std::unique_ptr<GroundTruthModel> model = MakeApp(/*seed=*/13);
  PoisonTarget primary(model.get(), 1.0, 1);
  auto pool = ParallelTarget::Create(&primary, 4);
  ASSERT_TRUE(pool.ok()) << pool.status();

  InterventionSpans spans = InterventionSpans(12, {model->predicates()[0]});
  spans[5] = {model->failure()};
  auto result = (*pool)->RunInterventionsBatch(spans, 2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  // Under parallelism the exact execution count is schedule-dependent, but
  // fail-fast bounds it: the poisoned span itself never executes, so the
  // total is strictly below the full batch.
  EXPECT_LT((*pool)->executions(),
            static_cast<uint64_t>(spans.size()) * 2);
}

}  // namespace
}  // namespace aid
