// Tests of the exec/ scheduling primitive: task results, multi-worker
// liveness, graceful shutdown, and exception transport.

#include "exec/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace aid {
namespace {

TEST(ThreadPoolTest, RunsTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, WorkerCountClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, MultipleWorkersRunConcurrently) {
  // Task A blocks until task B runs; completion therefore requires two live
  // workers, whatever the hardware parallelism.
  ThreadPool pool(2);
  std::promise<void> release;
  std::future<void> released = release.get_future();
  std::future<int> blocked =
      pool.Submit([&released]() { released.wait(); return 1; });
  std::future<int> releaser =
      pool.Submit([&release]() { release.set_value(); return 2; });
  EXPECT_EQ(blocked.get(), 1);
  EXPECT_EQ(releaser.get(), 2);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([&ran]() { ++ran; }));
    }
  }  // destructor: graceful shutdown
  for (auto& future : futures) future.get();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([]() {}).get();
  pool.Shutdown();
  pool.Shutdown();
}

TEST(ThreadPoolTest, ExceptionsTravelThroughTheFuture) {
  ThreadPool pool(1);
  std::future<int> future =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DiscardShutdownBreaksPendingPromises) {
  // One worker, wedged on a latch; everything queued behind it must NOT be
  // silently dropped with live futures -- discard shutdown has to deliver
  // broken_promise to each pending future so waiters abort promptly.
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::future<int> blocked =
      pool.Submit([released]() { released.wait(); return 1; });
  std::vector<std::future<int>> pending;
  for (int i = 0; i < 8; ++i) {
    pending.push_back(pool.Submit([]() { return 2; }));
  }

  std::thread shutdown(
      [&pool]() { pool.Shutdown(ThreadPool::DrainPolicy::kDiscard); });
  // Give the shutdown thread time to latch the discard flag before the
  // wedged task is released; even if it loses that race, the invariant below
  // (no future left dangling) still holds -- only the broken count varies.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  release.set_value();  // unwedge the running task; queued ones are discarded
  shutdown.join();

  EXPECT_EQ(blocked.get(), 1);  // the in-flight task still completed
  int broken = 0;
  int completed = 0;
  for (auto& future : pending) {
    try {
      future.get();
      ++completed;
    } catch (const std::future_error& e) {
      EXPECT_EQ(e.code(), std::future_errc::broken_promise);
      ++broken;
    }
  }
  // The hard contract: every future resolves -- result or broken_promise,
  // never a hang. And with the flag latched before release, the queued
  // tasks' promises were broken rather than run.
  EXPECT_EQ(broken + completed, 8);
  EXPECT_GT(broken, 0);
}

TEST(ThreadPoolTest, DrainShutdownStillRunsQueuedTasks) {
  std::atomic<int> ran{0};
  ThreadPool pool(1);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.Submit([&ran]() { ++ran; }));
  }
  pool.Shutdown(ThreadPool::DrainPolicy::kDrain);
  for (auto& future : futures) future.get();
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace aid
