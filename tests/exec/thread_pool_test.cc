// Tests of the exec/ scheduling primitive: task results, multi-worker
// liveness, graceful shutdown, and exception transport.

#include "exec/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace aid {
namespace {

TEST(ThreadPoolTest, RunsTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, WorkerCountClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, MultipleWorkersRunConcurrently) {
  // Task A blocks until task B runs; completion therefore requires two live
  // workers, whatever the hardware parallelism.
  ThreadPool pool(2);
  std::promise<void> release;
  std::future<void> released = release.get_future();
  std::future<int> blocked =
      pool.Submit([&released]() { released.wait(); return 1; });
  std::future<int> releaser =
      pool.Submit([&release]() { release.set_value(); return 2; });
  EXPECT_EQ(blocked.get(), 1);
  EXPECT_EQ(releaser.get(), 2);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([&ran]() { ++ran; }));
    }
  }  // destructor: graceful shutdown
  for (auto& future : futures) future.get();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([]() {}).get();
  pool.Shutdown();
  pool.Shutdown();
}

TEST(ThreadPoolTest, ExceptionsTravelThroughTheFuture) {
  ThreadPool pool(1);
  std::future<int> future =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

/// True once `pool` observably refuses new work: Submit's future reports
/// broken_promise IMMEDIATELY, which proves shutting_down_ (and, for a
/// kDiscard call, the discard flag set in the same critical section) has
/// latched. Non-blocking on purpose: before the latch the probe lands in
/// the queue -- possibly behind a deliberately wedged task -- and waiting
/// on it would deadlock the test; such a probe either runs later (returns
/// 0, harmless) or is discarded with the rest of the queue.
bool ShutdownLatched(ThreadPool& pool) {
  std::future<int> probe = pool.Submit([]() { return 0; });
  if (probe.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return false;  // queued or running: shutdown had not latched yet
  }
  try {
    probe.get();
    return false;  // the probe already ran: not latched when submitted
  } catch (const std::future_error&) {
    return true;
  }
}

TEST(ThreadPoolTest, DiscardShutdownBreaksPendingPromises) {
  // One worker, wedged on a latch; everything queued behind it must NOT be
  // silently dropped with live futures -- discard shutdown has to deliver
  // broken_promise to each pending future so waiters abort promptly.
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::future<int> blocked =
      pool.Submit([released]() { released.wait(); return 1; });
  std::vector<std::future<int>> pending;
  for (int i = 0; i < 8; ++i) {
    pending.push_back(pool.Submit([]() { return 2; }));
  }

  std::thread shutdown(
      [&pool]() { pool.Shutdown(ThreadPool::DrainPolicy::kDiscard); });
  // Wait until the discard shutdown has PROVABLY latched (a probe Submit is
  // refused) before unwedging -- no sleep-based race: the worker is still
  // wedged, so the 8 queued tasks cannot have run, and the latched discard
  // flag guarantees they never will.
  while (!ShutdownLatched(pool)) {
    // Throttled: each losing probe lands in the queue, and a hot spin
    // could pile up tasks faster than the eventual drain/discard clears
    // them (minutes under sanitizers).
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.set_value();  // unwedge the running task; queued ones are discarded
  shutdown.join();

  EXPECT_EQ(blocked.get(), 1);  // the in-flight task still completed
  int broken = 0;
  for (auto& future : pending) {
    try {
      future.get();
    } catch (const std::future_error& e) {
      EXPECT_EQ(e.code(), std::future_errc::broken_promise);
      ++broken;
    }
  }
  // Every queued task's promise was broken: none ran (the worker was
  // wedged until the discard latched), and none is left dangling.
  EXPECT_EQ(broken, 8);
}

TEST(ThreadPoolTest, SubmitAfterShutdownBreaksThePromiseInsteadOfCrashing) {
  ThreadPool pool(2);
  pool.Shutdown();
  // Regression: this used to AID_CHECK-crash the process. The refused
  // task's future must resolve with broken_promise -- recoverable, prompt,
  // unambiguous.
  std::future<int> refused = pool.Submit([]() { return 7; });
  try {
    refused.get();
    FAIL() << "a post-shutdown submit must not produce a result";
  } catch (const std::future_error& e) {
    EXPECT_EQ(e.code(), std::future_errc::broken_promise);
  }
}

TEST(ThreadPoolTest, SecondShutdownEscalatesDrainToDiscard) {
  // One worker wedged on a latch with 8 tasks queued behind it. A kDrain
  // shutdown starts draining (blocked on the wedge); a concurrent kDiscard
  // must NOT be ignored (the old early-return dropped its policy): the
  // queued tasks' promises are broken instead of the tasks running. The
  // drain latch is proven via a refused probe; the discard latch has no
  // external probe, so the scenario retries under pathological scheduling
  // instead of failing on one lost race.
  int broken = 0;
  for (int attempt = 0; attempt < 5 && broken == 0; ++attempt) {
    ThreadPool pool(1);
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    std::future<int> blocked =
        pool.Submit([released]() { released.wait(); return 1; });
    std::vector<std::future<int>> pending;
    for (int i = 0; i < 8; ++i) {
      pending.push_back(pool.Submit([]() { return 2; }));
    }

    std::thread drainer(
        [&pool]() { pool.Shutdown(ThreadPool::DrainPolicy::kDrain); });
    while (!ShutdownLatched(pool)) {
      // Throttled for the same queue-pileup reason as above; the drain
      // path will RUN every losing probe after release.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::thread discarder(
        [&pool]() { pool.Shutdown(ThreadPool::DrainPolicy::kDiscard); });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    release.set_value();
    drainer.join();
    discarder.join();

    EXPECT_EQ(blocked.get(), 1);  // the in-flight task still completed
    int completed = 0;
    for (auto& future : pending) {
      try {
        future.get();
        ++completed;
      } catch (const std::future_error& e) {
        EXPECT_EQ(e.code(), std::future_errc::broken_promise);
        ++broken;
      }
    }
    // The hard per-attempt contract: every future resolves -- result or
    // broken_promise, never a hang.
    EXPECT_EQ(broken + completed, 8);
  }
  // The escalation contract: at least one attempt saw the second call's
  // kDiscard break queued promises mid-drain.
  EXPECT_GT(broken, 0);
}

TEST(ThreadPoolTest, ShutdownAfterShutdownIsStillSafe) {
  ThreadPool pool(2);
  pool.Submit([]() {}).get();
  pool.Shutdown(ThreadPool::DrainPolicy::kDrain);
  // Both orders of repeat calls are legal and must not double-join.
  pool.Shutdown(ThreadPool::DrainPolicy::kDiscard);
  pool.Shutdown(ThreadPool::DrainPolicy::kDrain);
}

TEST(ThreadPoolTest, DrainShutdownStillRunsQueuedTasks) {
  std::atomic<int> ran{0};
  ThreadPool pool(1);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.Submit([&ran]() { ++ran; }));
  }
  pool.Shutdown(ThreadPool::DrainPolicy::kDrain);
  for (auto& future : futures) future.get();
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace aid
