// Tests of the exec/ scheduling primitive: task results, multi-worker
// liveness, graceful shutdown, and exception transport.

#include "exec/thread_pool.h"

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace aid {
namespace {

TEST(ThreadPoolTest, RunsTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, WorkerCountClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, MultipleWorkersRunConcurrently) {
  // Task A blocks until task B runs; completion therefore requires two live
  // workers, whatever the hardware parallelism.
  ThreadPool pool(2);
  std::promise<void> release;
  std::future<void> released = release.get_future();
  std::future<int> blocked =
      pool.Submit([&released]() { released.wait(); return 1; });
  std::future<int> releaser =
      pool.Submit([&release]() { release.set_value(); return 2; });
  EXPECT_EQ(blocked.get(), 1);
  EXPECT_EQ(releaser.get(), 2);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([&ran]() { ++ran; }));
    }
  }  // destructor: graceful shutdown
  for (auto& future : futures) future.get();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([]() {}).get();
  pool.Shutdown();
  pool.Shutdown();
}

TEST(ThreadPoolTest, ExceptionsTravelThroughTheFuture) {
  ThreadPool pool(1);
  std::future<int> future =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

}  // namespace
}  // namespace aid
