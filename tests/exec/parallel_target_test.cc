// Tests of exec::ParallelTarget: bit-identical parity with serial dispatch
// over model, flaky, and VM targets; exact executions accounting including
// the speculative-execution split of batched dispatch; and error transport
// from worker tasks.

#include "exec/parallel_target.h"

#include <algorithm>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "casestudies/case_study.h"
#include "core/engine.h"
#include "core/vm_target.h"
#include "exec/replicable.h"
#include "synth/flaky_target.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

/// Canonical form of a PredicateLog (sorted observations), so two logs can
/// be compared bit-for-bit despite the unordered map.
std::vector<std::tuple<PredicateId, Tick, Tick>> Canonical(
    const PredicateLog& log) {
  std::vector<std::tuple<PredicateId, Tick, Tick>> out;
  out.reserve(log.observed.size());
  for (const auto& [id, obs] : log.observed) {
    out.emplace_back(id, obs.start, obs.end);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectSameResult(const TargetRunResult& a, const TargetRunResult& b) {
  ASSERT_EQ(a.logs.size(), b.logs.size());
  for (size_t i = 0; i < a.logs.size(); ++i) {
    EXPECT_EQ(a.logs[i].failed, b.logs[i].failed) << "log " << i;
    EXPECT_EQ(Canonical(a.logs[i]), Canonical(b.logs[i])) << "log " << i;
  }
}

void ExpectSameReport(const DiscoveryReport& a, const DiscoveryReport& b) {
  EXPECT_EQ(a.causal_path, b.causal_path);
  EXPECT_EQ(a.spurious, b.spurious);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.speculative_executions, b.speculative_executions);
  EXPECT_EQ(a.path_is_chain, b.path_is_chain);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].intervened, b.history[i].intervened);
    EXPECT_EQ(a.history[i].failure_stopped, b.history[i].failure_stopped);
    EXPECT_EQ(a.history[i].phase, b.history[i].phase);
  }
}

std::unique_ptr<GroundTruthModel> MakeApp(uint64_t seed = 7) {
  SyntheticAppOptions options;
  options.max_threads = 12;
  options.seed = seed;
  auto model = GenerateSyntheticApp(options);
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(*model);
}

InterventionSpans MakeSpans(const GroundTruthModel& model) {
  InterventionSpans spans;
  for (PredicateId id : model.predicates()) spans.push_back({id});
  spans.push_back({});  // the empty intervention
  return spans;
}

// --- parity with serial dispatch ------------------------------------------

TEST(ParallelTargetTest, BatchMatchesSerialOnModelTarget) {
  std::unique_ptr<GroundTruthModel> model = MakeApp();
  const InterventionSpans spans = MakeSpans(*model);

  ModelTarget serial(model.get());
  auto expected = serial.RunInterventionsBatch(spans, /*trials=*/3);
  ASSERT_TRUE(expected.ok()) << expected.status();

  ModelTarget primary(model.get());
  auto parallel = ParallelTarget::Create(&primary, /*parallelism=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  auto got = (*parallel)->RunInterventionsBatch(spans, /*trials=*/3);
  ASSERT_TRUE(got.ok()) << got.status();

  ASSERT_EQ(got->size(), expected->size());
  for (size_t i = 0; i < got->size(); ++i) {
    ExpectSameResult((*got)[i], (*expected)[i]);
  }
  EXPECT_EQ((*parallel)->executions(), serial.executions());
}

TEST(ParallelTargetTest, SingleSpanShardsTrialsAndMatchesSerial) {
  std::unique_ptr<GroundTruthModel> model = MakeApp();
  const std::vector<PredicateId> span{model->causal_chain().front()};

  ModelTarget serial(model.get());
  auto expected = serial.RunIntervened(span, /*trials=*/10);
  ASSERT_TRUE(expected.ok()) << expected.status();

  ModelTarget primary(model.get());
  auto parallel = ParallelTarget::Create(&primary, /*parallelism=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  auto got = (*parallel)->RunIntervened(span, /*trials=*/10);
  ASSERT_TRUE(got.ok()) << got.status();

  ExpectSameResult(*got, *expected);
  EXPECT_EQ((*parallel)->executions(), serial.executions());
}

TEST(ParallelTargetTest, FlakyTargetIsBitIdenticalToSerial) {
  std::unique_ptr<GroundTruthModel> model = MakeApp(/*seed=*/13);
  const InterventionSpans spans = MakeSpans(*model);

  FlakyModelTarget serial(model.get(), /*manifest_probability=*/0.6,
                          /*seed=*/11);
  auto expected = serial.RunInterventionsBatch(spans, /*trials=*/5);
  ASSERT_TRUE(expected.ok()) << expected.status();

  FlakyModelTarget primary(model.get(), /*manifest_probability=*/0.6,
                           /*seed=*/11);
  auto parallel = ParallelTarget::Create(&primary, /*parallelism=*/3);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  auto got = (*parallel)->RunInterventionsBatch(spans, /*trials=*/5);
  ASSERT_TRUE(got.ok()) << got.status();

  ASSERT_EQ(got->size(), expected->size());
  for (size_t i = 0; i < got->size(); ++i) {
    ExpectSameResult((*got)[i], (*expected)[i]);
  }
  EXPECT_EQ((*parallel)->executions(), serial.executions());
}

TEST(ParallelTargetTest, FlakySeekTrialIsPositional) {
  GroundTruthModel model;
  model.AddFailure();
  PredicateId p = model.AddPredicate(0);
  model.SetCausalChain({p});

  FlakyModelTarget a(&model, /*manifest_probability=*/0.5, /*seed=*/42);
  FlakyModelTarget b(&model, /*manifest_probability=*/0.5, /*seed=*/42);

  // Whatever order trials run in, equal positions flip equal coins.
  a.SeekTrial(100);
  auto at_100 = a.RunIntervened({}, 16);
  ASSERT_TRUE(at_100.ok());
  b.SeekTrial(9000);
  auto detour = b.RunIntervened({}, 4);
  ASSERT_TRUE(detour.ok());
  b.SeekTrial(100);
  auto again = b.RunIntervened({}, 16);
  ASSERT_TRUE(again.ok());
  ExpectSameResult(*again, *at_100);
}

TEST(ParallelTargetTest, WrappingMidStreamContinuesTheSerialPositions) {
  GroundTruthModel model;
  model.AddFailure();
  PredicateId p = model.AddPredicate(0);
  model.SetCausalChain({p});

  // Reference: one uninterrupted serial run.
  FlakyModelTarget serial(&model, /*manifest_probability=*/0.5, /*seed=*/9);
  auto serial_head = serial.RunIntervened({}, 7);
  ASSERT_TRUE(serial_head.ok());
  auto serial_tail = serial.RunIntervened({}, 12);
  ASSERT_TRUE(serial_tail.ok());

  // Same target run serially, then wrapped in a pool mid-stream: dispatch
  // must continue at the primary's trial position, not restart at 0.
  FlakyModelTarget primary(&model, /*manifest_probability=*/0.5, /*seed=*/9);
  auto head = primary.RunIntervened({}, 7);
  ASSERT_TRUE(head.ok());
  ExpectSameResult(*head, *serial_head);
  auto parallel = ParallelTarget::Create(&primary, /*parallelism=*/3);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  auto tail = (*parallel)->RunIntervened({}, 12);
  ASSERT_TRUE(tail.ok());
  ExpectSameResult(*tail, *serial_tail);
  EXPECT_EQ((*parallel)->executions(), serial.executions());
}

// --- whole-engine determinism (the satellite acceptance test) -------------

class ParallelDeterminismTest : public ::testing::TestWithParam<EngineOptions> {
};

TEST_P(ParallelDeterminismTest, ParallelReportEqualsSerialReport) {
  std::unique_ptr<GroundTruthModel> model = MakeApp(/*seed=*/21);
  auto dag = model->BuildAcDag();
  ASSERT_TRUE(dag.ok()) << dag.status();

  EngineOptions options = GetParam();
  options.trials_per_intervention = 2;

  ModelTarget serial(model.get());
  options.parallelism = 1;
  CausalPathDiscovery serial_discovery(&*dag, &serial, options);
  auto serial_report = serial_discovery.Run();
  ASSERT_TRUE(serial_report.ok()) << serial_report.status();

  ModelTarget primary(model.get());
  auto parallel = ParallelTarget::Create(&primary, /*parallelism=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  options.parallelism = 4;
  CausalPathDiscovery parallel_discovery(&*dag, parallel->get(), options);
  auto parallel_report = parallel_discovery.Run();
  ASSERT_TRUE(parallel_report.ok()) << parallel_report.status();

  ExpectSameReport(*parallel_report, *serial_report);
  std::vector<PredicateId> truth = model->causal_chain();
  truth.push_back(model->failure());
  EXPECT_EQ(parallel_report->causal_path, truth);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, ParallelDeterminismTest,
    ::testing::Values(EngineOptions::Aid(),
                      EngineOptions::AidNoPredicatePruning(),
                      EngineOptions::AidNoPruning(), EngineOptions::Tagt()));

TEST(ParallelTargetTest, VmCaseStudyReportMatchesSerial) {
  auto study = MakeKafkaUseAfterFree();
  ASSERT_TRUE(study.ok()) << study.status();

  auto make_report = [&](int parallelism) -> Result<DiscoveryReport> {
    AID_ASSIGN_OR_RETURN(std::unique_ptr<VmTarget> vm,
                         VmTarget::Create(&study->program,
                                          study->target_options));
    AID_ASSIGN_OR_RETURN(AcDag dag, vm->BuildAcDag());
    EngineOptions options = EngineOptions::Linear();
    options.trials_per_intervention = 3;
    options.batched_dispatch = true;
    options.parallelism = parallelism;
    InterventionTarget* target = vm.get();
    std::unique_ptr<ParallelTarget> pool;
    if (parallelism > 1) {
      AID_ASSIGN_OR_RETURN(pool, ParallelTarget::Create(vm.get(),
                                                        parallelism));
      target = pool.get();
    }
    CausalPathDiscovery discovery(&dag, target, options);
    return discovery.Run();
  };

  auto serial = make_report(1);
  ASSERT_TRUE(serial.ok()) << serial.status();
  auto parallel = make_report(4);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ExpectSameReport(*parallel, *serial);
  EXPECT_TRUE(parallel->has_root_cause());
}

// --- executions accounting ------------------------------------------------

TEST(ParallelTargetTest, SpeculativeExecutionsAreReportedDistinctly) {
  std::unique_ptr<GroundTruthModel> model = MakeApp(/*seed=*/5);
  auto dag = model->BuildAcDag();
  ASSERT_TRUE(dag.ok()) << dag.status();
  const int trials = 3;

  // Serial linear scan skips pruned predicates: nothing is speculative.
  ModelTarget serial(model.get());
  EngineOptions serial_options = EngineOptions::Linear();
  serial_options.trials_per_intervention = trials;
  CausalPathDiscovery serial_discovery(&*dag, &serial, serial_options);
  auto serial_report = serial_discovery.Run();
  ASSERT_TRUE(serial_report.ok()) << serial_report.status();
  EXPECT_EQ(serial_report->speculative_executions, 0);
  EXPECT_EQ(serial_report->executions, serial_report->rounds * trials);

  // Parallel batched dispatch executes the whole scan; spans that pruning
  // answered before consumption are speculative -- counted in executions,
  // reported distinctly, and excluded from rounds.
  ModelTarget primary(model.get());
  auto parallel = ParallelTarget::Create(&primary, /*parallelism=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EngineOptions batched = serial_options;
  batched.parallelism = 4;
  CausalPathDiscovery batched_discovery(&*dag, parallel->get(), batched);
  auto batched_report = batched_discovery.Run();
  ASSERT_TRUE(batched_report.ok()) << batched_report.status();
  EXPECT_GT(batched_report->speculative_executions, 0);
  EXPECT_EQ(batched_report->executions,
            batched_report->rounds * trials +
                batched_report->speculative_executions);
  // Target-side accounting agrees with the engine's delta.
  EXPECT_EQ((*parallel)->executions(), batched_report->executions);
  // The decisions are unchanged by speculation.
  EXPECT_EQ(batched_report->causal_path, serial_report->causal_path);
  EXPECT_EQ(batched_report->spurious, serial_report->spurious);
}

TEST(ParallelTargetTest, ExecutionsIncludeThePrimaryHistory) {
  std::unique_ptr<GroundTruthModel> model = MakeApp();
  ModelTarget primary(model.get());
  auto warmup = primary.RunIntervened({}, 5);  // e.g. an observation phase
  ASSERT_TRUE(warmup.ok());
  auto parallel = ParallelTarget::Create(&primary, /*parallelism=*/2);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ((*parallel)->executions(), 5);
  auto run = (*parallel)->RunIntervened({}, 4);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ((*parallel)->executions(), 9);
}

// --- error transport ------------------------------------------------------

TEST(ParallelTargetTest, WorkerErrorsPropagateFromTheBatch) {
  std::unique_ptr<GroundTruthModel> model = MakeApp();

  class Failing : public ReplicableTarget {
   public:
    explicit Failing(const GroundTruthModel* model)
        : model_(model), inner_(model) {}
    Result<TargetRunResult> RunIntervened(
        const std::vector<PredicateId>& intervened, int trials) override {
      if (!intervened.empty() && intervened.front() == model_->failure()) {
        return Status::Internal("cannot intervene on F");
      }
      return inner_.RunIntervened(intervened, trials);
    }
    Result<std::unique_ptr<ReplicableTarget>> Clone() const override {
      return std::unique_ptr<ReplicableTarget>(new Failing(model_));
    }
    uint64_t executions() const override { return inner_.executions(); }

   private:
    const GroundTruthModel* model_;
    ModelTarget inner_;
  };

  Failing primary(model.get());
  auto parallel = ParallelTarget::Create(&primary, /*parallelism=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  InterventionSpans spans = MakeSpans(*model);
  spans.push_back({model->failure()});  // the poisoned span
  auto result = (*parallel)->RunInterventionsBatch(spans, 2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ParallelTargetTest, RejectsInvalidConfiguration) {
  std::unique_ptr<GroundTruthModel> model = MakeApp();
  ModelTarget primary(model.get());
  EXPECT_FALSE(ParallelTarget::Create(nullptr, 2).ok());
  EXPECT_FALSE(ParallelTarget::Create(&primary, 0).ok());
  auto one = ParallelTarget::Create(&primary, 1);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ((*one)->parallelism(), 1);
}

}  // namespace
}  // namespace aid
