// Tests of the multi-tenant discovery daemon (service/service.h) and its
// wire protocol (service/protocol.h):
//
//   * concurrent sessions: >= 3 discoveries interleaved on one daemon, each
//     report bit-identical (SameDiscoveryOutcome) to a solo engine run;
//   * admission: at max_sessions the daemon answers a structured
//     FAILED_PRECONDITION ERROR, and a drained slot admits the next SUBMIT;
//   * quota: unbudgeted sessions crossing session_quota are stopped with an
//     ERROR; budgeted sessions have their global budget clamped and finish
//     with a best-effort report instead;
//   * checkpoint/resume: checkpoint_after_rounds detaches with the state
//     blob, a fresh SUBMIT with the blob resumes to the identical report --
//     flaky subjects included (the service reparks the rebuilt target at
//     the checkpoint's trial cursor);
//   * codec: the DiscoveryReport round-trips field-for-field, and corrupt
//     payloads are rejected rather than misread.
//
// Targets stay in-process (no fork), so the suite runs under TSan in CI.

#include "service/service.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/target_factory.h"
#include "core/engine.h"
#include "service/client.h"
#include "service/protocol.h"
#include "synth/model.h"

namespace aid {
namespace {

#if AID_NET_SUPPORTED

/// The paper's Figure 4 example: p10's anomalous interval has temporal
/// paths from two true causes (p3, p11) plus confounded non-causes.
std::unique_ptr<GroundTruthModel> Figure4Model() {
  auto model = std::make_unique<GroundTruthModel>();
  model->AddFailure();
  std::vector<PredicateId> p(12, kInvalidPredicate);
  for (int i = 1; i <= 11; ++i) p[static_cast<size_t>(i)] = model->AddPredicate(i);
  auto edge = [&](int a, int b) { model->AddTemporalEdge(p[static_cast<size_t>(a)], p[static_cast<size_t>(b)]); };
  edge(1, 2); edge(2, 3); edge(3, 4); edge(4, 5); edge(5, 6);
  edge(3, 7); edge(7, 8); edge(7, 9); edge(8, 11); edge(9, 11);
  edge(6, 10); edge(8, 10); edge(9, 10);
  model->SetCausalChain({p[1], p[2], p[11]});
  model->SetTrueParents(p[10], {p[3], p[11]});
  return model;
}

std::unique_ptr<GroundTruthModel> ChainModel(int length) {
  auto model = std::make_unique<GroundTruthModel>();
  model->AddFailure();
  std::vector<PredicateId> chain;
  for (int i = 0; i < length; ++i) chain.push_back(model->AddPredicate(i));
  for (int i = 0; i + 1 < length; ++i) {
    model->AddTemporalEdge(chain[static_cast<size_t>(i)],
                           chain[static_cast<size_t>(i) + 1]);
  }
  model->SetCausalChain({chain[static_cast<size_t>(length / 2)]});
  return model;
}

SubjectSpec ModelSpec(const GroundTruthModel* model) {
  SubjectSpec spec;
  spec.kind = SubjectKind::kModel;
  spec.model = model;
  return spec;
}

SubjectSpec FlakySpec(const GroundTruthModel* model, double manifest,
                      uint64_t seed) {
  SubjectSpec spec;
  spec.kind = SubjectKind::kFlakyModel;
  spec.model = model;
  spec.manifest_probability = manifest;
  spec.flaky_seed = seed;
  return spec;
}

/// The terminal frame is written before the session is unregistered, so a
/// client can observe its own session for one more scheduler beat; drains
/// within that beat.
void ExpectDrained(DiscoveryService* service) {
  for (int attempt = 0; attempt < 250; ++attempt) {
    if (service->live_sessions() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(service->live_sessions(), 0);
}

/// The ground truth every service report is held to: a solo blocking engine
/// run of the same subject and options.
DiscoveryReport SoloRun(const GroundTruthModel* model,
                        const EngineOptions& options,
                        double manifest = 1.0, uint64_t seed = 1) {
  auto target = manifest < 1.0
                    ? MakeModelSessionTarget(model, manifest, seed, "flaky")
                    : MakeModelSessionTarget(model);
  EXPECT_TRUE(target.ok()) << target.status();
  auto dag = (*target)->BuildAcDag();
  EXPECT_TRUE(dag.ok()) << dag.status();
  CausalPathDiscovery engine(&*dag, (*target)->intervention_target(), options);
  auto report = engine.Run();
  EXPECT_TRUE(report.ok()) << report.status();
  return *report;
}

TEST(ServiceProtocolTest, ReportRoundTripsFieldForField) {
  DiscoveryReport report;
  report.causal_path = {3, 11, 7};
  report.spurious = {2, 9};
  report.rounds = 1u << 20;
  report.executions = (1ull << 33) + 17;  // past 32 bits: widened counters
  report.speculative_executions = 5;
  report.respawns = 2;
  report.crashed_trials = 4;
  report.timed_out_trials = 1;
  report.steals = 9;
  report.straggler_wait_micros = 12345;
  report.replica_trials = {100, 80, 120};
  InterventionRound round;
  round.intervened = {5, 6};
  round.failure_stopped = true;
  round.phase = "branch";
  report.history = {round};
  report.path_is_chain = true;
  report.budgeted_trials_allocated = 64;
  report.budgeted_trials_saved = -3;
  report.budget_early_stops = 7;
  report.budget_exhausted = true;
  report.confidence = {{3, 0.97}, {11, 0.5}};

  ReportMsg msg;
  msg.session_id = 42;
  msg.report = report;
  auto decoded = DecodeReportMsg(EncodeReportMsg(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->session_id, 42u);
  const DiscoveryReport& out = decoded->report;
  EXPECT_TRUE(SameDiscoveryOutcome(out, report));
  EXPECT_EQ(out.respawns, report.respawns);
  EXPECT_EQ(out.crashed_trials, report.crashed_trials);
  EXPECT_EQ(out.timed_out_trials, report.timed_out_trials);
  EXPECT_EQ(out.steals, report.steals);
  EXPECT_EQ(out.straggler_wait_micros, report.straggler_wait_micros);
  EXPECT_EQ(out.replica_trials, report.replica_trials);
  ASSERT_EQ(out.history.size(), 1u);
  EXPECT_EQ(out.history[0].intervened, round.intervened);
  EXPECT_EQ(out.history[0].failure_stopped, true);
  EXPECT_EQ(out.history[0].phase, "branch");
  EXPECT_EQ(out.path_is_chain, true);
  EXPECT_EQ(out.budgeted_trials_allocated, report.budgeted_trials_allocated);
  EXPECT_EQ(out.budgeted_trials_saved, report.budgeted_trials_saved);
  EXPECT_EQ(out.budget_early_stops, report.budget_early_stops);
  EXPECT_EQ(out.budget_exhausted, true);
  ASSERT_EQ(out.confidence.size(), 2u);
  EXPECT_EQ(out.confidence[0].id, 3);
  EXPECT_DOUBLE_EQ(out.confidence[0].causal_posterior, 0.97);

  // Corrupt payloads fail cleanly: truncation can never misread.
  const std::string bytes = EncodeReportMsg(msg);
  for (size_t cut : {size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(DecodeReportMsg(std::string_view(bytes).substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(ServiceProtocolTest, SubmitAndCheckpointRoundTrip) {
  SubmitMsg submit;
  submit.label = "kafka-debug";
  submit.spec = "spec-bytes";
  submit.engine = "engine-bytes";
  submit.checkpoint_after_rounds = 5;
  submit.state = std::string("blob\0with\0nuls", 14);
  auto submit2 = DecodeSubmit(EncodeSubmit(submit));
  ASSERT_TRUE(submit2.ok()) << submit2.status();
  EXPECT_EQ(submit2->label, submit.label);
  EXPECT_EQ(submit2->spec, submit.spec);
  EXPECT_EQ(submit2->engine, submit.engine);
  EXPECT_EQ(submit2->checkpoint_after_rounds, 5u);
  EXPECT_EQ(submit2->state, submit.state);

  CheckpointMsg checkpoint;
  checkpoint.session_id = 7;
  checkpoint.rounds = 3;
  checkpoint.executions = 19;
  checkpoint.state = "state-bytes";
  auto checkpoint2 = DecodeCheckpoint(EncodeCheckpoint(checkpoint));
  ASSERT_TRUE(checkpoint2.ok()) << checkpoint2.status();
  EXPECT_EQ(checkpoint2->session_id, 7u);
  EXPECT_EQ(checkpoint2->rounds, 3u);
  EXPECT_EQ(checkpoint2->executions, 19u);
  EXPECT_EQ(checkpoint2->state, "state-bytes");
}

TEST(ServiceTest, ThreeConcurrentSessionsMatchSoloRuns) {
  // Three different subjects, three different presets, one daemon: the
  // interleaving must never leak state across sessions.
  auto figure4 = Figure4Model();
  auto chain = ChainModel(9);
  auto wide = ChainModel(17);
  struct Plan {
    const GroundTruthModel* model;
    EngineOptions options;
    std::string label;
  };
  std::vector<Plan> plans = {
      {figure4.get(), EngineOptions::Aid(), "aid-figure4"},
      {chain.get(), EngineOptions::Tagt(), "tagt-chain"},
      {wide.get(), EngineOptions::Linear(), "linear-wide"},
  };

  ServiceOptions options;
  options.workers = 3;
  options.telemetry = Telemetry::Create();
  auto service = DiscoveryService::Start(options);
  ASSERT_TRUE(service.ok()) << service.status();

  // Connect + submit all three before awaiting anything, so the daemon
  // holds all three sessions live at once.
  std::vector<std::unique_ptr<ServiceClient>> clients;
  for (const Plan& plan : plans) {
    auto client = ServiceClient::Connect((*service)->endpoint());
    ASSERT_TRUE(client.ok()) << client.status();
    ServiceSubmission submission;
    submission.label = plan.label;
    submission.spec = ModelSpec(plan.model);
    submission.engine = plan.options;
    auto accepted = (*client)->Submit(submission);
    ASSERT_TRUE(accepted.ok()) << accepted.status();
    EXPECT_FALSE(accepted->resumed);
    clients.push_back(std::move(*client));
  }
  EXPECT_EQ((*service)->sessions_accepted(), 3u);

  for (size_t i = 0; i < plans.size(); ++i) {
    auto outcome = clients[i]->Await(/*timeout_ms=*/60000);
    ASSERT_TRUE(outcome.ok()) << plans[i].label << ": " << outcome.status();
    ASSERT_FALSE(outcome->checkpointed);
    const DiscoveryReport solo = SoloRun(plans[i].model, plans[i].options);
    EXPECT_TRUE(SameDiscoveryOutcome(outcome->report, solo))
        << plans[i].label;
    EXPECT_EQ(outcome->report.history.size(), solo.history.size())
        << plans[i].label;
  }
  ExpectDrained(service->get());

  // Per-session labeled counters reconcile with the reports they produced.
  const MetricsSnapshot metrics =
      options.telemetry->Snapshot().metrics;
  for (size_t i = 0; i < plans.size(); ++i) {
    const DiscoveryReport solo = SoloRun(plans[i].model, plans[i].options);
    EXPECT_EQ(metrics.Value("aid_service_rounds_total",
                            {{"session", plans[i].label}}),
              solo.rounds)
        << plans[i].label;
    EXPECT_EQ(metrics.Value("aid_service_executions_total",
                            {{"session", plans[i].label}}),
              solo.executions)
        << plans[i].label;
  }
  EXPECT_EQ(metrics.Value("aid_service_reports_total", {}), 3u);
}

TEST(ServiceTest, SessionPastTheCapGetsAStructuredError) {
  // A long chain under Linear x many trials keeps the occupant session live
  // for thousands of scheduler turns -- plenty to observe the rejection.
  auto occupant_model = ChainModel(301);
  auto model = Figure4Model();
  ServiceOptions options;
  options.max_sessions = 1;
  options.workers = 1;
  auto service = DiscoveryService::Start(options);
  ASSERT_TRUE(service.ok()) << service.status();

  auto occupant = ServiceClient::Connect((*service)->endpoint());
  ASSERT_TRUE(occupant.ok()) << occupant.status();
  ServiceSubmission slow;
  slow.label = "occupant";
  slow.spec = ModelSpec(occupant_model.get());
  slow.engine = EngineOptions::Linear();
  slow.engine.trials_per_intervention = 32;
  ASSERT_TRUE((*occupant)->Submit(slow).ok());

  ServiceSubmission submission;
  submission.label = "rejected";
  submission.spec = ModelSpec(model.get());
  submission.engine = EngineOptions::Aid();
  auto client = ServiceClient::Connect((*service)->endpoint());
  ASSERT_TRUE(client.ok()) << client.status();
  auto rejected = (*client)->Submit(submission);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.status().message().find("session cap"),
            std::string::npos)
      << rejected.status();
  EXPECT_NE(rejected.status().message().find("--max-sessions 1"),
            std::string::npos)
      << rejected.status();

  // Once the occupant drains, the freed slot admits the retry the error
  // message promises.
  auto occupant_outcome = (*occupant)->Await(/*timeout_ms=*/120000);
  ASSERT_TRUE(occupant_outcome.ok()) << occupant_outcome.status();
  Result<AcceptedMsg> admitted = Status::Internal("never tried");
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto retry = ServiceClient::Connect((*service)->endpoint());
    ASSERT_TRUE(retry.ok()) << retry.status();
    admitted = (*retry)->Submit(submission);
    if (admitted.ok()) {
      auto outcome = (*retry)->Await(/*timeout_ms=*/60000);
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(admitted.ok()) << admitted.status();
}

TEST(ServiceTest, QuotaStopsUnbudgetedSessionsWithAnError) {
  auto model = Figure4Model();
  ServiceOptions options;
  options.session_quota = 3;  // Figure 4 under AID needs ~24 executions
  auto service = DiscoveryService::Start(options);
  ASSERT_TRUE(service.ok()) << service.status();

  auto client = ServiceClient::Connect((*service)->endpoint());
  ASSERT_TRUE(client.ok()) << client.status();
  ServiceSubmission submission;
  submission.label = "over-quota";
  submission.spec = ModelSpec(model.get());
  submission.engine = EngineOptions::Aid();
  ASSERT_TRUE((*client)->Submit(submission).ok());
  auto outcome = (*client)->Await(/*timeout_ms=*/60000);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(outcome.status().message().find("quota"), std::string::npos)
      << outcome.status();
  ExpectDrained(service->get());
}

TEST(ServiceTest, QuotaClampsBudgetedSessionsToABestEffortReport) {
  auto model = Figure4Model();
  ServiceOptions options;
  options.session_quota = 6;
  auto service = DiscoveryService::Start(options);
  ASSERT_TRUE(service.ok()) << service.status();

  auto client = ServiceClient::Connect((*service)->endpoint());
  ASSERT_TRUE(client.ok()) << client.status();
  ServiceSubmission submission;
  submission.label = "budgeted";
  submission.spec = ModelSpec(model.get());
  submission.engine = EngineOptions::Aid();
  submission.engine.trials_per_intervention = 3;
  submission.engine.budget.enabled = true;  // max_executions <- quota
  ASSERT_TRUE((*client)->Submit(submission).ok());
  auto outcome = (*client)->Await(/*timeout_ms=*/60000);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_FALSE(outcome->checkpointed);
  EXPECT_TRUE(outcome->report.budget_exhausted);
  EXPECT_LE(outcome->report.executions, 6u + 3u);  // quota + one last round
  EXPECT_FALSE(outcome->report.confidence.empty());

  // The clamp is what the engine sees: a solo run under the same explicit
  // budget produces the identical degraded report.
  EngineOptions solo_options = submission.engine;
  solo_options.budget.max_executions = 6;
  const DiscoveryReport solo = SoloRun(model.get(), solo_options);
  EXPECT_TRUE(SameDiscoveryOutcome(outcome->report, solo));
}

TEST(ServiceTest, CheckpointDetachesAndResumeFinishesIdentically) {
  auto model = Figure4Model();
  const EngineOptions engine = EngineOptions::Aid();
  const DiscoveryReport solo = SoloRun(model.get(), engine);
  ASSERT_GE(solo.rounds, 4u);

  ServiceOptions options;
  auto service = DiscoveryService::Start(options);
  ASSERT_TRUE(service.ok()) << service.status();

  auto client = ServiceClient::Connect((*service)->endpoint());
  ASSERT_TRUE(client.ok()) << client.status();
  ServiceSubmission submission;
  submission.label = "checkpointed";
  submission.spec = ModelSpec(model.get());
  submission.engine = engine;
  submission.checkpoint_after_rounds = 3;
  ASSERT_TRUE((*client)->Submit(submission).ok());
  auto checkpointed = (*client)->Await(/*timeout_ms=*/60000);
  ASSERT_TRUE(checkpointed.ok()) << checkpointed.status();
  ASSERT_TRUE(checkpointed->checkpointed);
  EXPECT_GE(checkpointed->checkpoint.rounds, 3u);
  EXPECT_LT(checkpointed->checkpoint.rounds, solo.rounds);
  EXPECT_FALSE(checkpointed->checkpoint.state.empty());
  ExpectDrained(service->get());  // detached

  // Resume on a FRESH connection -- in real deployments possibly a
  // different daemon; only the spec and the blob carry over.
  auto resumer = ServiceClient::Connect((*service)->endpoint());
  ASSERT_TRUE(resumer.ok()) << resumer.status();
  ServiceSubmission resume;
  resume.label = "resumed";
  resume.spec = ModelSpec(model.get());
  resume.engine = engine;
  resume.resume_state = checkpointed->checkpoint.state;
  auto accepted = (*resumer)->Submit(resume);
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  EXPECT_TRUE(accepted->resumed);
  auto outcome = (*resumer)->Await(/*timeout_ms=*/60000);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_FALSE(outcome->checkpointed);
  EXPECT_TRUE(SameDiscoveryOutcome(outcome->report, solo));
  EXPECT_EQ(outcome->report.history.size(), solo.history.size());
}

TEST(ServiceTest, FlakySubjectResumesOnTheSameCoinFlips) {
  // The resumed session runs on a REBUILT flaky target; the service must
  // park it at the checkpoint's trial cursor or the manifestation flips
  // diverge from the uninterrupted run.
  auto model = Figure4Model();
  EngineOptions engine = EngineOptions::Aid();
  engine.trials_per_intervention = 5;
  const double kManifest = 0.7;
  const uint64_t kSeed = 77;
  const DiscoveryReport solo = SoloRun(model.get(), engine, kManifest, kSeed);

  ServiceOptions options;
  auto service = DiscoveryService::Start(options);
  ASSERT_TRUE(service.ok()) << service.status();

  auto client = ServiceClient::Connect((*service)->endpoint());
  ASSERT_TRUE(client.ok()) << client.status();
  ServiceSubmission submission;
  submission.label = "flaky";
  submission.spec = FlakySpec(model.get(), kManifest, kSeed);
  submission.engine = engine;
  submission.checkpoint_after_rounds = 2;
  ASSERT_TRUE((*client)->Submit(submission).ok());
  auto checkpointed = (*client)->Await(/*timeout_ms=*/60000);
  ASSERT_TRUE(checkpointed.ok()) << checkpointed.status();
  ASSERT_TRUE(checkpointed->checkpointed);

  auto resumer = ServiceClient::Connect((*service)->endpoint());
  ASSERT_TRUE(resumer.ok()) << resumer.status();
  ServiceSubmission resume;
  resume.label = "flaky-resumed";
  resume.spec = FlakySpec(model.get(), kManifest, kSeed);
  resume.engine = engine;
  resume.resume_state = checkpointed->checkpoint.state;
  ASSERT_TRUE((*resumer)->Submit(resume).ok());
  auto outcome = (*resumer)->Await(/*timeout_ms=*/60000);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_FALSE(outcome->checkpointed);
  EXPECT_TRUE(SameDiscoveryOutcome(outcome->report, solo));
}

TEST(ServiceTest, RejectsAFrameThatIsNotASubmit) {
  ServiceOptions options;
  auto service = DiscoveryService::Start(options);
  ASSERT_TRUE(service.ok()) << service.status();

  auto fd = ConnectTo((*service)->endpoint(), /*timeout_ms=*/5000);
  ASSERT_TRUE(fd.ok()) << fd.status();
  SocketChannel channel(*fd);
  auto hello = channel.Read(/*deadline_ms=*/5000);
  ASSERT_TRUE(hello.ok()) << hello.status();
  ASSERT_TRUE(channel.Write(ProcMsgType::kPing, EncodePing({1})).ok());
  auto answer = channel.Read(/*deadline_ms=*/5000);
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_EQ(answer->type, ProcMsgType::kError);
  auto error = DecodeError(answer->payload);
  ASSERT_TRUE(error.ok()) << error.status();
  EXPECT_EQ(error->code, StatusCode::kInvalidArgument);
  EXPECT_NE(error->message.find("SUBMIT"), std::string::npos);
}

TEST(ServiceTest, RejectsACorruptStateBlob) {
  auto model = Figure4Model();
  ServiceOptions options;
  auto service = DiscoveryService::Start(options);
  ASSERT_TRUE(service.ok()) << service.status();

  auto client = ServiceClient::Connect((*service)->endpoint());
  ASSERT_TRUE(client.ok()) << client.status();
  ServiceSubmission submission;
  submission.label = "corrupt";
  submission.spec = ModelSpec(model.get());
  submission.engine = EngineOptions::Aid();
  submission.resume_state = "\x7f garbage that is no checkpoint";
  auto rejected = (*client)->Submit(submission);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  ExpectDrained(service->get());
}

#else  // !AID_NET_SUPPORTED

TEST(ServiceTest, UnsupportedPlatformReportsUnimplemented) {
  EXPECT_EQ(DiscoveryService::Start().status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(ServiceClient::Connect(Endpoint{}).status().code(),
            StatusCode::kUnimplemented);
}

#endif  // AID_NET_SUPPORTED

}  // namespace
}  // namespace aid
