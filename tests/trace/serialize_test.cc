#include "trace/serialize.h"

#include <gtest/gtest.h>

#include "common/symbol_table.h"
#include "trace/recorder.h"

namespace aid {
namespace {

TEST(SerializeTest, TsvContainsHeaderAndEvents) {
  SymbolTable methods;
  SymbolTable objects;
  SymbolTable exceptions;
  const SymbolId foo = methods.Intern("Foo");
  const SymbolId x = objects.Intern("x");

  TraceRecorder recorder;
  const CallUid uid = recorder.MethodEnter(0, foo, 1);
  recorder.Access(0, foo, uid, x, true, 9, 2);
  recorder.MethodExit(0, foo, uid, 3, true, 9);
  ExecutionTrace trace = recorder.Finish(false, {}, 4, 1);

  TraceSymbols symbols{&methods, &objects, &exceptions};
  const std::string tsv = TraceToTsv(trace, symbols);
  EXPECT_NE(tsv.find("seq\ttick\tthread"), std::string::npos);
  EXPECT_NE(tsv.find("Foo"), std::string::npos);
  EXPECT_NE(tsv.find("write"), std::string::npos);
  EXPECT_NE(tsv.find("x"), std::string::npos);
  // 1 header + 3 events.
  int lines = 0;
  for (char c : tsv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
}

TEST(SerializeTest, SummaryReflectsOutcome) {
  SymbolTable methods;
  SymbolTable objects;
  SymbolTable exceptions;
  const SymbolId foo = methods.Intern("Foo");
  const SymbolId oops = exceptions.Intern("Oops");

  TraceRecorder recorder;
  const CallUid uid = recorder.MethodEnter(0, foo, 1);
  recorder.Throw(0, foo, uid, oops, 2);
  recorder.MethodExit(0, foo, uid, 3, false, 0);
  ExecutionTrace trace = recorder.Finish(true, {oops, foo}, 4, 1);

  TraceSymbols symbols{&methods, &objects, &exceptions};
  const std::string summary = TraceSummary(trace, symbols);
  EXPECT_NE(summary.find("FAILED"), std::string::npos);
  EXPECT_NE(summary.find("Oops"), std::string::npos);
  EXPECT_NE(summary.find("Foo"), std::string::npos);
}

TEST(SerializeTest, SummaryOfSuccessfulRun) {
  TraceRecorder recorder;
  const CallUid uid = recorder.MethodEnter(0, 0, 1);
  recorder.MethodExit(0, 0, uid, 2, false, 0);
  ExecutionTrace trace = recorder.Finish(false, {}, 3, 1);
  const std::string summary = TraceSummary(trace, {});
  EXPECT_NE(summary.find("ok"), std::string::npos);
  EXPECT_NE(summary.find("1 calls"), std::string::npos);
}

// --- binary wire format (the proc/ protocol substrate) --------------------

namespace {

void ExpectEventsEqual(const Event& a, const Event& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.thread, b.thread);
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.call_uid, b.call_uid);
  EXPECT_EQ(a.object, b.object);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.has_value, b.has_value);
  EXPECT_EQ(a.tick, b.tick);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.spawned_thread, b.spawned_thread);
  EXPECT_EQ(a.locks_held, b.locks_held);
}

/// One event of every kind, with every field exercised (negative ids,
/// locksets, values, spawned threads).
ExecutionTrace MakeKitchenSinkTrace() {
  ExecutionTrace trace;
  const EventKind kinds[] = {
      EventKind::kMethodEnter, EventKind::kMethodExit, EventKind::kRead,
      EventKind::kWrite,       EventKind::kThrow,      EventKind::kCatch,
      EventKind::kLockAcquire, EventKind::kLockRelease, EventKind::kSpawn,
      EventKind::kJoin};
  uint64_t seq = 0;
  for (EventKind kind : kinds) {
    Event e;
    e.kind = kind;
    e.thread = static_cast<ThreadIndex>(seq % 3);
    e.method = static_cast<SymbolId>(seq);
    e.call_uid = static_cast<CallUid>(1000 + seq);
    e.object = (seq % 2 == 0) ? static_cast<SymbolId>(seq * 7) : kInvalidSymbol;
    e.value = -42 - static_cast<int64_t>(seq);
    e.has_value = seq % 2 == 1;
    e.tick = static_cast<Tick>(seq * 11);
    e.seq = seq;
    e.spawned_thread = kind == EventKind::kSpawn ? 2 : -1;
    if (kind == EventKind::kRead || kind == EventKind::kWrite) {
      e.locks_held = {3, 1, 4};
    }
    trace.Append(std::move(e));
    ++seq;
  }
  trace.set_failed(true);
  trace.set_failure_signature({/*exception_type=*/5, /*method=*/2});
  trace.set_end_tick(12345);
  trace.set_thread_count(3);
  return trace;
}

}  // namespace

TEST(BinarySerializeTest, RoundTripsAllEventKinds) {
  ExecutionTrace trace = MakeKitchenSinkTrace();
  const std::string bytes = TraceToBytes(trace);
  auto decoded = TraceFromBytes(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  EXPECT_EQ(decoded->failed(), trace.failed());
  EXPECT_EQ(decoded->failure_signature(), trace.failure_signature());
  EXPECT_EQ(decoded->end_tick(), trace.end_tick());
  EXPECT_EQ(decoded->thread_count(), trace.thread_count());
  ASSERT_EQ(decoded->events().size(), trace.events().size());
  for (size_t i = 0; i < trace.events().size(); ++i) {
    ExpectEventsEqual(decoded->events()[i], trace.events()[i]);
  }
  // Bit-stable: re-encoding reproduces the identical bytes.
  EXPECT_EQ(TraceToBytes(*decoded), bytes);
}

TEST(BinarySerializeTest, RoundTripsEmptyTrace) {
  ExecutionTrace empty;
  auto decoded = TraceFromBytes(TraceToBytes(empty));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->events().empty());
  EXPECT_FALSE(decoded->failed());
  EXPECT_EQ(decoded->end_tick(), 0);
  EXPECT_EQ(decoded->thread_count(), 0);
}

TEST(BinarySerializeTest, EveryTruncationFailsCleanly) {
  const std::string bytes = TraceToBytes(MakeKitchenSinkTrace());
  // Every proper prefix must decode to InvalidArgument -- never crash,
  // never succeed, never over-read.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto decoded = TraceFromBytes(std::string_view(bytes).substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(BinarySerializeTest, TrailingGarbageIsAnError) {
  std::string bytes = TraceToBytes(MakeKitchenSinkTrace());
  bytes += "garbage";
  auto decoded = TraceFromBytes(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("trailing"), std::string::npos);
}

TEST(BinarySerializeTest, ImplausibleEventCountIsRejected) {
  // Valid header, then an event count claiming ~2^31 events in 4 bytes.
  WireWriter writer;
  SerializeTrace(ExecutionTrace{}, writer);
  std::string bytes = writer.Release();
  // The count is the last u32 of the empty-trace encoding; overwrite it.
  for (size_t i = bytes.size() - 4; i < bytes.size(); ++i) bytes[i] = '\xff';
  auto decoded = TraceFromBytes(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireReaderTest, LatchesTruncationAndReportsOffset) {
  WireWriter writer;
  writer.U32(7);
  WireReader reader(writer.buffer());
  EXPECT_EQ(reader.U32(), 7u);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.U64(), 0u);  // past the end: zero value, latched error
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  // Subsequent reads stay zero and do not clear the error.
  EXPECT_EQ(reader.U8(), 0u);
  EXPECT_FALSE(reader.Finish().ok());
}

TEST(WireReaderTest, StringLengthBeyondBufferIsRejected) {
  WireWriter writer;
  writer.U32(1000);  // claims a 1000-byte string
  writer.Raw("abc");
  WireReader reader(writer.buffer());
  EXPECT_EQ(reader.Str(), "");
  EXPECT_FALSE(reader.ok());
}

TEST(WireReaderTest, PrimitivesRoundTrip) {
  WireWriter writer;
  writer.U8(0xAB);
  writer.U32(0xDEADBEEF);
  writer.U64(0x0123456789ABCDEFull);
  writer.I32(-12345);
  writer.I64(-9876543210);
  writer.F64(0.25);
  writer.Str("hello \0 world");  // embedded NUL via string_view would cut;
                                 // literal decays at the first NUL -- fine.
  WireReader reader(writer.buffer());
  EXPECT_EQ(reader.U8(), 0xAB);
  EXPECT_EQ(reader.U32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.I32(), -12345);
  EXPECT_EQ(reader.I64(), -9876543210);
  EXPECT_EQ(reader.F64(), 0.25);
  EXPECT_EQ(reader.Str(), "hello ");
  EXPECT_TRUE(reader.Finish().ok());
}

}  // namespace
}  // namespace aid
