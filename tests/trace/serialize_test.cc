#include "trace/serialize.h"

#include <gtest/gtest.h>

#include "common/symbol_table.h"
#include "trace/recorder.h"

namespace aid {
namespace {

TEST(SerializeTest, TsvContainsHeaderAndEvents) {
  SymbolTable methods;
  SymbolTable objects;
  SymbolTable exceptions;
  const SymbolId foo = methods.Intern("Foo");
  const SymbolId x = objects.Intern("x");

  TraceRecorder recorder;
  const CallUid uid = recorder.MethodEnter(0, foo, 1);
  recorder.Access(0, foo, uid, x, true, 9, 2);
  recorder.MethodExit(0, foo, uid, 3, true, 9);
  ExecutionTrace trace = recorder.Finish(false, {}, 4, 1);

  TraceSymbols symbols{&methods, &objects, &exceptions};
  const std::string tsv = TraceToTsv(trace, symbols);
  EXPECT_NE(tsv.find("seq\ttick\tthread"), std::string::npos);
  EXPECT_NE(tsv.find("Foo"), std::string::npos);
  EXPECT_NE(tsv.find("write"), std::string::npos);
  EXPECT_NE(tsv.find("x"), std::string::npos);
  // 1 header + 3 events.
  int lines = 0;
  for (char c : tsv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
}

TEST(SerializeTest, SummaryReflectsOutcome) {
  SymbolTable methods;
  SymbolTable objects;
  SymbolTable exceptions;
  const SymbolId foo = methods.Intern("Foo");
  const SymbolId oops = exceptions.Intern("Oops");

  TraceRecorder recorder;
  const CallUid uid = recorder.MethodEnter(0, foo, 1);
  recorder.Throw(0, foo, uid, oops, 2);
  recorder.MethodExit(0, foo, uid, 3, false, 0);
  ExecutionTrace trace = recorder.Finish(true, {oops, foo}, 4, 1);

  TraceSymbols symbols{&methods, &objects, &exceptions};
  const std::string summary = TraceSummary(trace, symbols);
  EXPECT_NE(summary.find("FAILED"), std::string::npos);
  EXPECT_NE(summary.find("Oops"), std::string::npos);
  EXPECT_NE(summary.find("Foo"), std::string::npos);
}

TEST(SerializeTest, SummaryOfSuccessfulRun) {
  TraceRecorder recorder;
  const CallUid uid = recorder.MethodEnter(0, 0, 1);
  recorder.MethodExit(0, 0, uid, 2, false, 0);
  ExecutionTrace trace = recorder.Finish(false, {}, 3, 1);
  const std::string summary = TraceSummary(trace, {});
  EXPECT_NE(summary.find("ok"), std::string::npos);
  EXPECT_NE(summary.find("1 calls"), std::string::npos);
}

}  // namespace
}  // namespace aid
