#include "trace/trace.h"

#include <gtest/gtest.h>

#include "trace/recorder.h"

namespace aid {
namespace {

// Builds a trace via the recorder the way the VM would.
class TraceBuilderTest : public ::testing::Test {
 protected:
  TraceRecorder recorder_;
};

TEST_F(TraceBuilderTest, SimpleCallHasEnterAndExit) {
  const CallUid uid = recorder_.MethodEnter(0, 7, 10);
  recorder_.MethodExit(0, 7, uid, 20, true, 42);
  ExecutionTrace trace = recorder_.Finish(false, {}, 21, 1);

  auto execs = trace.BuildMethodExecutions();
  ASSERT_TRUE(execs.ok());
  ASSERT_EQ(execs->size(), 1u);
  const MethodExecution& exec = (*execs)[0];
  EXPECT_EQ(exec.method, 7);
  EXPECT_EQ(exec.thread, 0);
  EXPECT_EQ(exec.enter_tick, 10);
  EXPECT_EQ(exec.exit_tick, 20);
  EXPECT_EQ(exec.duration(), 10);
  EXPECT_TRUE(exec.has_return_value);
  EXPECT_EQ(exec.return_value, 42);
  EXPECT_FALSE(exec.threw);
  EXPECT_EQ(exec.occurrence, 1);
}

TEST_F(TraceBuilderTest, NestedCallsAttachAccessesToInnermostFrame) {
  const CallUid outer = recorder_.MethodEnter(0, 1, 1);
  recorder_.Access(0, 1, outer, 100, false, 5, 2);
  const CallUid inner = recorder_.MethodEnter(0, 2, 3);
  recorder_.Access(0, 2, inner, 100, true, 6, 4);
  recorder_.MethodExit(0, 2, inner, 5, false, 0);
  recorder_.MethodExit(0, 1, outer, 6, false, 0);
  ExecutionTrace trace = recorder_.Finish(false, {}, 7, 1);

  auto execs = trace.BuildMethodExecutions();
  ASSERT_TRUE(execs.ok());
  ASSERT_EQ(execs->size(), 2u);
  // Enter order: outer first.
  EXPECT_EQ((*execs)[0].method, 1);
  EXPECT_EQ((*execs)[1].method, 2);
  ASSERT_EQ((*execs)[0].access_events.size(), 1u);
  ASSERT_EQ((*execs)[1].access_events.size(), 1u);
  EXPECT_EQ(trace.events()[(*execs)[0].access_events[0]].kind,
            EventKind::kRead);
  EXPECT_EQ(trace.events()[(*execs)[1].access_events[0]].kind,
            EventKind::kWrite);
}

TEST_F(TraceBuilderTest, OccurrenceIndexCountsPerMethodInEnterOrder) {
  for (int i = 0; i < 3; ++i) {
    const CallUid uid = recorder_.MethodEnter(0, 9, 10 * i);
    recorder_.MethodExit(0, 9, uid, 10 * i + 5, false, 0);
  }
  const CallUid other = recorder_.MethodEnter(0, 4, 100);
  recorder_.MethodExit(0, 4, other, 110, false, 0);
  ExecutionTrace trace = recorder_.Finish(false, {}, 111, 1);

  auto execs = trace.BuildMethodExecutions();
  ASSERT_TRUE(execs.ok());
  ASSERT_EQ(execs->size(), 4u);
  EXPECT_EQ((*execs)[0].occurrence, 1);
  EXPECT_EQ((*execs)[1].occurrence, 2);
  EXPECT_EQ((*execs)[2].occurrence, 3);
  EXPECT_EQ((*execs)[3].occurrence, 1);  // different method restarts count
}

TEST_F(TraceBuilderTest, ThrowMarksAllOpenFramesOnThread) {
  const CallUid outer = recorder_.MethodEnter(0, 1, 1);
  const CallUid inner = recorder_.MethodEnter(0, 2, 2);
  recorder_.Throw(0, 2, inner, 55, 10);
  recorder_.MethodExit(0, 2, inner, 11, false, 0);
  recorder_.MethodExit(0, 1, outer, 12, false, 0);
  ExecutionTrace trace = recorder_.Finish(true, {55, 2}, 13, 1);

  auto execs = trace.BuildMethodExecutions();
  ASSERT_TRUE(execs.ok());
  for (const auto& exec : *execs) {
    EXPECT_TRUE(exec.threw);
    EXPECT_TRUE(exec.exception_escaped);
    EXPECT_EQ(exec.exception_type, 55);
    EXPECT_EQ(exec.throw_tick, 10);
  }
}

TEST_F(TraceBuilderTest, CatchContainsExceptionAtCatchingFrame) {
  const CallUid outer = recorder_.MethodEnter(0, 1, 1);   // catches
  const CallUid inner = recorder_.MethodEnter(0, 2, 2);
  recorder_.Throw(0, 2, inner, 55, 10);
  recorder_.MethodExit(0, 2, inner, 11, false, 0);  // unwound
  recorder_.Catch(0, 1, outer, 55, 11);
  recorder_.MethodExit(0, 1, outer, 12, true, 0);
  ExecutionTrace trace = recorder_.Finish(false, {}, 13, 1);

  auto execs = trace.BuildMethodExecutions();
  ASSERT_TRUE(execs.ok());
  const MethodExecution& outer_exec = (*execs)[0];
  const MethodExecution& inner_exec = (*execs)[1];
  EXPECT_TRUE(inner_exec.threw);
  EXPECT_TRUE(outer_exec.threw);
  EXPECT_FALSE(outer_exec.exception_escaped);  // contained here
}

TEST_F(TraceBuilderTest, OpenFramesCloseAtTraceEnd) {
  recorder_.MethodEnter(0, 3, 5);
  ExecutionTrace trace = recorder_.Finish(true, {}, 99, 1);

  auto execs = trace.BuildMethodExecutions();
  ASSERT_TRUE(execs.ok());
  ASSERT_EQ(execs->size(), 1u);
  EXPECT_EQ((*execs)[0].exit_tick, 99);
}

TEST_F(TraceBuilderTest, MismatchedExitIsRejected) {
  ExecutionTrace trace;
  Event exit;
  exit.kind = EventKind::kMethodExit;
  exit.thread = 0;
  exit.method = 1;
  exit.call_uid = 5;
  trace.Append(exit);
  EXPECT_FALSE(trace.BuildMethodExecutions().ok());
}

TEST_F(TraceBuilderTest, LocksetsAreTrackedPerThread) {
  const CallUid uid = recorder_.MethodEnter(0, 1, 1);
  recorder_.LockAcquire(0, 1, uid, 77, 2);
  recorder_.Access(0, 1, uid, 100, true, 1, 3);
  recorder_.LockRelease(0, 1, uid, 77, 4);
  recorder_.Access(0, 1, uid, 100, true, 2, 5);
  recorder_.MethodExit(0, 1, uid, 6, false, 0);
  ExecutionTrace trace = recorder_.Finish(false, {}, 7, 1);

  std::vector<const Event*> accesses;
  for (const Event& e : trace.events()) {
    if (e.kind == EventKind::kWrite) accesses.push_back(&e);
  }
  ASSERT_EQ(accesses.size(), 2u);
  ASSERT_EQ(accesses[0]->locks_held.size(), 1u);
  EXPECT_EQ(accesses[0]->locks_held[0], 77);
  EXPECT_TRUE(accesses[1]->locks_held.empty());
}

TEST_F(TraceBuilderTest, OverlapsIsSymmetricAndStrict) {
  MethodExecution a;
  a.enter_tick = 0;
  a.exit_tick = 10;
  MethodExecution b;
  b.enter_tick = 5;
  b.exit_tick = 15;
  MethodExecution c;
  c.enter_tick = 10;
  c.exit_tick = 20;
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));  // touching endpoints do not overlap
  EXPECT_FALSE(c.Overlaps(a));
}

TEST_F(TraceBuilderTest, SequenceNumbersAreMonotonic) {
  const CallUid a = recorder_.MethodEnter(0, 1, 1);
  const CallUid b = recorder_.MethodEnter(1, 2, 1);
  recorder_.MethodExit(1, 2, b, 2, false, 0);
  recorder_.MethodExit(0, 1, a, 3, false, 0);
  ExecutionTrace trace = recorder_.Finish(false, {}, 4, 2);
  uint64_t prev = 0;
  for (size_t i = 0; i < trace.events().size(); ++i) {
    if (i > 0) {
      EXPECT_GT(trace.events()[i].seq, prev);
    }
    prev = trace.events()[i].seq;
  }
}

}  // namespace
}  // namespace aid
