// Integration tests over the six real-world case studies (paper Section
// 7.1, Figure 7): the full pipeline must identify the documented root cause
// and reproduce the paper's comparison shape (SD reports far more
// predicates than the causal path; AID uses fewer interventions than
// TAGT's worst case).

#include <cmath>

#include <gtest/gtest.h>

#include "casestudies/case_study.h"
#include "casestudies/pipeline.h"
#include "common/math_util.h"

// This test deliberately drives the deprecated RunPipeline shim to pin its
// behavior; new code goes through aid::Session (api/session.h).
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace aid {
namespace {

class CaseStudyTest : public ::testing::TestWithParam<int> {
 protected:
  static PipelineConfig Config() {
    PipelineConfig config;
    config.aid.trials_per_intervention = 3;
    config.tagt.trials_per_intervention = 3;
    return config;
  }
};

TEST_P(CaseStudyTest, PipelineFindsTheDocumentedRootCause) {
  auto studies = AllCaseStudies();
  ASSERT_TRUE(studies.ok());
  const CaseStudy& study = (*studies)[static_cast<size_t>(GetParam())];

  auto outcome = RunPipeline(study, Config());
  ASSERT_TRUE(outcome.ok()) << study.name << ": " << outcome.status();

  // The discovered root cause matches the developers' explanation.
  EXPECT_NE(outcome->root_cause.find(study.expected_root_substring),
            std::string::npos)
      << study.name << ": got root '" << outcome->root_cause << "'";

  // The causal path is non-trivial and ends at the failure predicate.
  EXPECT_GE(outcome->aid_path_len(), 1) << study.name;
  ASSERT_FALSE(outcome->causal_path.empty());
  EXPECT_EQ(outcome->causal_path.back(), "FAILURE");

  // SD reports more predicates than the causal path contains -- the
  // imprecision AID resolves (Figure 7, columns 3 vs 4).
  EXPECT_GT(outcome->fully_discriminative, outcome->aid_path_len())
      << study.name;

  // AID stays below TAGT's worst case D * ceil(log2 N) on the same DAG.
  const int worst_tagt =
      static_cast<int>(outcome->aid_path_len()) *
      CeilLog2(static_cast<uint64_t>(std::max(outcome->acdag_nodes, 2)));
  EXPECT_LE(outcome->aid.rounds,
            std::max<uint64_t>(worst_tagt, outcome->tagt.rounds))
      << study.name;

  // Both engines find the same root cause.
  EXPECT_EQ(outcome->aid.root_cause(), outcome->tagt.root_cause())
      << study.name;

  // Causal and spurious sets are disjoint and cover the AC-DAG candidates.
  for (PredicateId causal : outcome->aid.causal_path) {
    for (PredicateId spurious : outcome->aid.spurious) {
      EXPECT_NE(causal, spurious) << study.name;
    }
  }
  EXPECT_EQ(static_cast<int>(outcome->aid.causal_path.size() - 1 +
                             outcome->aid.spurious.size()),
            outcome->acdag_nodes - 1)
      << study.name;
}

std::string CaseStudyName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"Npgsql",  "Kafka",        "CosmosDB",
                                 "Network", "BuildAndTest", "HealthTelemetry"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllSix, CaseStudyTest, ::testing::Range(0, 6),
                         CaseStudyName);

TEST(CaseStudyRegistryTest, AllSixAreRegisteredWithPaperNumbers) {
  auto studies = AllCaseStudies();
  ASSERT_TRUE(studies.ok());
  ASSERT_EQ(studies->size(), 6u);
  for (const CaseStudy& study : *studies) {
    EXPECT_FALSE(study.name.empty());
    EXPECT_FALSE(study.origin.empty());
    EXPECT_FALSE(study.root_cause.empty());
    EXPECT_GT(study.paper.sd_predicates, 0);
    EXPECT_GT(study.paper.causal_path, 0);
    EXPECT_GT(study.paper.aid_interventions, 0);
    // The paper's headline comparison: AID beats TAGT on every case.
    EXPECT_LT(study.paper.aid_interventions, study.paper.tagt_interventions);
  }
}

TEST(CaseStudySpecificTest, NpgsqlExplanationMatchesIssue2485) {
  auto study = MakeNpgsqlRace();
  ASSERT_TRUE(study.ok());
  PipelineConfig config;
  config.aid.trials_per_intervention = 3;
  config.run_tagt = false;
  auto outcome = RunPipeline(*study, config);
  ASSERT_TRUE(outcome.ok());
  // Path: race on the index variable -> premature read -> exception.
  ASSERT_GE(outcome->causal_path.size(), 3u);
  EXPECT_NE(outcome->causal_path[0].find("_nextSlot"), std::string::npos);
  bool mentions_exception = false;
  for (const auto& step : outcome->causal_path) {
    if (step.find("throws an exception") != std::string::npos) {
      mentions_exception = true;
    }
  }
  EXPECT_TRUE(mentions_exception);
}

TEST(CaseStudySpecificTest, KafkaPathLinksSlownessToDisposedCommit) {
  auto study = MakeKafkaUseAfterFree();
  ASSERT_TRUE(study.ok());
  PipelineConfig config;
  config.aid.trials_per_intervention = 3;
  config.run_tagt = false;
  auto outcome = RunPipeline(*study, config);
  ASSERT_TRUE(outcome.ok());
  EXPECT_NE(outcome->root_cause.find("DoWork runs too slow"),
            std::string::npos);
  bool commit_fails = false;
  for (const auto& step : outcome->causal_path) {
    if (step.find("CommitOffsets throws") != std::string::npos) {
      commit_fails = true;
    }
  }
  EXPECT_TRUE(commit_fails);
}

TEST(CaseStudySpecificTest, NetworkPathIsJustTheCollision) {
  auto study = MakeNetworkCollision();
  ASSERT_TRUE(study.ok());
  PipelineConfig config;
  config.aid.trials_per_intervention = 3;
  config.run_tagt = false;
  auto outcome = RunPipeline(*study, config);
  ASSERT_TRUE(outcome.ok());
  // The paper reports a single-predicate causal path for Network.
  EXPECT_EQ(outcome->aid_path_len(), 1);
  EXPECT_NE(outcome->root_cause.find("same value"), std::string::npos);
}

TEST(CaseStudySpecificTest, HealthTelemetryHasTheLongestPath) {
  auto studies = AllCaseStudies();
  ASSERT_TRUE(studies.ok());
  PipelineConfig config;
  config.aid.trials_per_intervention = 3;
  config.run_tagt = false;
  int health_len = 0;
  int max_other = 0;
  for (const CaseStudy& study : *studies) {
    auto outcome = RunPipeline(study, config);
    ASSERT_TRUE(outcome.ok()) << study.name;
    if (study.name == "HealthTelemetry") {
      health_len = outcome->aid_path_len();
    } else {
      max_other = std::max(max_other, outcome->aid_path_len());
    }
  }
  EXPECT_GT(health_len, max_other);
}

}  // namespace
}  // namespace aid
