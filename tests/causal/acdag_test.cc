#include "causal/acdag.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aid {
namespace {

class AcDagTest : public ::testing::Test {
 protected:
  PredicateId Pred(int index) {
    return catalog_.Intern(
        Predicate{.kind = PredKind::kSynthetic, .occurrence = index});
  }
  PredicateId Failure() {
    return catalog_.Intern(Predicate{.kind = PredKind::kFailure});
  }

  /// Failed log observing each (id, tick) pair.
  PredicateLog FailedLog(std::vector<std::pair<PredicateId, Tick>> obs) {
    PredicateLog log;
    log.failed = true;
    for (auto [id, tick] : obs) log.observed[id] = {tick, tick};
    return log;
  }

  PredicateCatalog catalog_;
};

TEST_F(AcDagTest, BuildFromConsistentTimesYieldsChain) {
  const PredicateId a = Pred(1);
  const PredicateId b = Pred(2);
  const PredicateId f = Failure();
  std::vector<PredicateLog> logs{FailedLog({{a, 1}, {b, 5}, {f, 9}}),
                                 FailedLog({{a, 2}, {b, 6}, {f, 9}})};
  auto dag = AcDag::Build(&catalog_, logs, {a, b, f}, f);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->size(), 3u);
  EXPECT_TRUE(dag->Reaches(a, b));
  EXPECT_TRUE(dag->Reaches(a, f));
  EXPECT_TRUE(dag->Reaches(b, f));
  EXPECT_FALSE(dag->Reaches(b, a));
  EXPECT_EQ(dag->TopoOrder(), (std::vector<PredicateId>{a, b, f}));
}

TEST_F(AcDagTest, InconsistentOrderDropsBothEdges) {
  const PredicateId a = Pred(1);
  const PredicateId b = Pred(2);
  const PredicateId f = Failure();
  // a before b in one log, after in the other.
  std::vector<PredicateLog> logs{FailedLog({{a, 1}, {b, 5}, {f, 9}}),
                                 FailedLog({{a, 6}, {b, 2}, {f, 9}})};
  auto dag = AcDag::Build(&catalog_, logs, {a, b, f}, f);
  ASSERT_TRUE(dag.ok());
  EXPECT_FALSE(dag->Reaches(a, b));
  EXPECT_FALSE(dag->Reaches(b, a));
  // Both still precede the failure.
  EXPECT_TRUE(dag->Reaches(a, f));
  EXPECT_TRUE(dag->Reaches(b, f));
  // They form a junction: one topo level with two members.
  const auto levels = dag->TopoLevels();
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0].size(), 2u);
}

TEST_F(AcDagTest, TiedTimesProduceNoEdge) {
  const PredicateId a = Pred(1);
  const PredicateId b = Pred(2);
  const PredicateId f = Failure();
  std::vector<PredicateLog> logs{FailedLog({{a, 5}, {b, 5}, {f, 9}})};
  auto dag = AcDag::Build(&catalog_, logs, {a, b, f}, f);
  ASSERT_TRUE(dag.ok());
  EXPECT_FALSE(dag->Reaches(a, b));
  EXPECT_FALSE(dag->Reaches(b, a));
}

TEST_F(AcDagTest, NodesNotReachingFailureAreDropped) {
  const PredicateId a = Pred(1);
  const PredicateId late = Pred(2);  // occurs after F's timestamp
  const PredicateId f = Failure();
  std::vector<PredicateLog> logs{FailedLog({{a, 1}, {late, 20}, {f, 9}})};
  auto dag = AcDag::Build(&catalog_, logs, {a, late, f}, f);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->size(), 2u);
  EXPECT_TRUE(dag->Contains(a));
  EXPECT_FALSE(dag->Contains(late));
}

TEST_F(AcDagTest, SuccessfulLogsAreIgnored) {
  const PredicateId a = Pred(1);
  const PredicateId f = Failure();
  PredicateLog success;
  success.failed = false;
  success.observed[a] = {100, 100};  // would invert the order if counted
  std::vector<PredicateLog> logs{FailedLog({{a, 1}, {f, 9}}), success};
  auto dag = AcDag::Build(&catalog_, logs, {a, f}, f);
  ASSERT_TRUE(dag.ok());
  EXPECT_TRUE(dag->Reaches(a, f));
}

TEST_F(AcDagTest, FailureMustBeAmongCandidates) {
  const PredicateId a = Pred(1);
  const PredicateId f = Failure();
  std::vector<PredicateLog> logs{FailedLog({{a, 1}, {f, 9}})};
  EXPECT_FALSE(AcDag::Build(&catalog_, logs, {a}, f).ok());
}

TEST_F(AcDagTest, PrecedencePolicySelectsTimestamp) {
  // A too-slow predicate (interval [0, 30]) vs a point predicate at 10:
  // with the end policy the slow predicate comes *after* the point one.
  PredicateCatalog catalog;
  const PredicateId slow = catalog.Intern(
      Predicate{.kind = PredKind::kTooSlow, .m1 = 1});
  const PredicateId point = catalog.Intern(
      Predicate{.kind = PredKind::kMethodFails, .m1 = 2});
  const PredicateId f = catalog.Intern(Predicate{.kind = PredKind::kFailure});
  PredicateLog log;
  log.failed = true;
  log.observed[slow] = {0, 30};
  log.observed[point] = {10, 10};
  log.observed[f] = {40, 40};
  std::vector<PredicateLog> logs{log};

  auto dag = AcDag::Build(&catalog, logs, {slow, point, f}, f);
  ASSERT_TRUE(dag.ok());
  EXPECT_TRUE(dag->Reaches(point, slow));
  EXPECT_FALSE(dag->Reaches(slow, point));

  // With a start policy for kTooSlow the direction flips.
  PrecedenceConfig config = PrecedenceConfig::Default();
  config.Set(PredKind::kTooSlow, TimestampPolicy::kStart);
  auto dag2 = AcDag::Build(&catalog, logs, {slow, point, f}, f, config);
  ASSERT_TRUE(dag2.ok());
  EXPECT_TRUE(dag2->Reaches(slow, point));
}

TEST_F(AcDagTest, FromEdgesComputesClosure) {
  const PredicateId a = Pred(1);
  const PredicateId b = Pred(2);
  const PredicateId c = Pred(3);
  const PredicateId f = Failure();
  auto dag = AcDag::FromEdges(&catalog_, {a, b, c, f},
                              {{a, b}, {b, c}, {c, f}}, f);
  ASSERT_TRUE(dag.ok());
  EXPECT_TRUE(dag->Reaches(a, c));
  EXPECT_TRUE(dag->Reaches(a, f));
  // The reduction keeps only direct edges.
  EXPECT_EQ(dag->Children(a), (std::vector<PredicateId>{b}));
  EXPECT_EQ(dag->Parents(c), (std::vector<PredicateId>{b}));
}

TEST_F(AcDagTest, FromEdgesRejectsCycles) {
  const PredicateId a = Pred(1);
  const PredicateId b = Pred(2);
  const PredicateId f = Failure();
  EXPECT_FALSE(
      AcDag::FromEdges(&catalog_, {a, b, f}, {{a, b}, {b, a}, {a, f}}, f).ok());
}

TEST_F(AcDagTest, FromEdgesRejectsUnknownEndpointsAndSelfLoops) {
  const PredicateId a = Pred(1);
  const PredicateId f = Failure();
  EXPECT_FALSE(AcDag::FromEdges(&catalog_, {a, f}, {{a, 999}}, f).ok());
  EXPECT_FALSE(AcDag::FromEdges(&catalog_, {a, f}, {{a, a}}, f).ok());
}

TEST_F(AcDagTest, RestrictKeepsInducedClosure) {
  const PredicateId a = Pred(1);
  const PredicateId b = Pred(2);
  const PredicateId c = Pred(3);
  const PredicateId f = Failure();
  auto dag = AcDag::FromEdges(&catalog_, {a, b, c, f},
                              {{a, b}, {b, c}, {c, f}}, f);
  ASSERT_TRUE(dag.ok());
  AcDag sub = dag->Restrict({a, c});
  EXPECT_EQ(sub.size(), 3u);  // failure retained automatically
  EXPECT_TRUE(sub.Reaches(a, c));  // via the removed b, preserved in closure
  EXPECT_TRUE(sub.Contains(f));
}

TEST_F(AcDagTest, DescendantsAndLevels) {
  // Diamond: a -> {b, c} -> d -> f.
  const PredicateId a = Pred(1);
  const PredicateId b = Pred(2);
  const PredicateId c = Pred(3);
  const PredicateId d = Pred(4);
  const PredicateId f = Failure();
  auto dag = AcDag::FromEdges(&catalog_, {a, b, c, d, f},
                              {{a, b}, {a, c}, {b, d}, {c, d}, {d, f}}, f);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->Descendants(a).size(), 4u);
  EXPECT_EQ(dag->Descendants(d).size(), 1u);
  const auto levels = dag->TopoLevels();
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_EQ(levels[0], (std::vector<PredicateId>{a}));
  EXPECT_EQ(levels[1].size(), 2u);  // the junction {b, c}
  EXPECT_EQ(levels[2], (std::vector<PredicateId>{d}));
}

TEST_F(AcDagTest, ToDotMentionsEveryNode) {
  const PredicateId a = Pred(1);
  const PredicateId f = Failure();
  auto dag = AcDag::FromEdges(&catalog_, {a, f}, {{a, f}}, f);
  ASSERT_TRUE(dag.ok());
  const std::string dot = dag->ToDot(nullptr, nullptr);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("doubleoctagon"), std::string::npos);  // failure node
}

// Property: the Build() relation is transitively closed and acyclic for
// random fully-discriminative logs.
class AcDagPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AcDagPropertyTest, ClosureIsTransitiveAndAcyclic) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  PredicateCatalog catalog;
  std::vector<PredicateId> preds;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    preds.push_back(catalog.Intern(
        Predicate{.kind = PredKind::kSynthetic, .occurrence = i}));
  }
  const PredicateId f = catalog.Intern(Predicate{.kind = PredKind::kFailure});

  // Several failed logs with random times; F always last.
  std::vector<PredicateLog> logs;
  for (int r = 0; r < 4; ++r) {
    PredicateLog log;
    log.failed = true;
    for (PredicateId id : preds) {
      const Tick t = static_cast<Tick>(rng.Uniform(50));
      log.observed[id] = {t, t};
    }
    log.observed[f] = {100, 100};
    logs.push_back(std::move(log));
  }
  std::vector<PredicateId> candidates = preds;
  candidates.push_back(f);
  auto dag = AcDag::Build(&catalog, logs, candidates, f);
  ASSERT_TRUE(dag.ok());

  // Transitivity of Reaches over the surviving nodes.
  for (PredicateId x : dag->nodes()) {
    EXPECT_FALSE(dag->Reaches(x, x));
    for (PredicateId y : dag->nodes()) {
      for (PredicateId z : dag->nodes()) {
        if (dag->Reaches(x, y) && dag->Reaches(y, z)) {
          EXPECT_TRUE(dag->Reaches(x, z));
        }
      }
      if (x != y && dag->Reaches(x, y)) {
        EXPECT_FALSE(dag->Reaches(y, x));  // antisymmetry
      }
    }
  }
  // TopoOrder is consistent with Reaches.
  const auto order = dag->TopoOrder();
  for (size_t i = 0; i < order.size(); ++i) {
    for (size_t j = i + 1; j < order.size(); ++j) {
      EXPECT_FALSE(dag->Reaches(order[j], order[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcDagPropertyTest, ::testing::Range(1, 16));

}  // namespace
}  // namespace aid
