// Session-level telemetry tests on in-process model targets: the metric
// totals mirror the DiscoveryReport exactly, the span tree covers the whole
// pipeline (observation -> statistical debugging -> AC-DAG construction ->
// discovery phases -> rounds), reports stay bit-identical with telemetry on
// vs. off, repeated runs accumulate, and the TAGT baseline is never
// instrumented. The pipe-transport propagation test (subprocess isolation:
// engine-side trial spans adopting imported host spans) rides along here;
// the socket-transport variant lives in tests/telemetry/fleet_test.cc.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "proc/wire.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

std::unique_ptr<GroundTruthModel> MakeModel(uint64_t seed = 7) {
  SyntheticAppOptions options;
  options.max_threads = 10;
  options.seed = seed;
  auto model = GenerateSyntheticApp(options);
  EXPECT_TRUE(model.ok()) << model.status();
  return model.ok() ? std::move(*model) : nullptr;
}

const SpanRecord* FindById(const std::vector<SpanRecord>& spans,
                           uint64_t id) {
  for (const SpanRecord& span : spans) {
    if (span.id == id) return &span;
  }
  return nullptr;
}

std::vector<const SpanRecord*> FindByName(
    const std::vector<SpanRecord>& spans, const std::string& name) {
  std::vector<const SpanRecord*> out;
  for (const SpanRecord& span : spans) {
    if (span.name == name) out.push_back(&span);
  }
  return out;
}

void ExpectMetricsMirrorReport(const MetricsSnapshot& metrics,
                               const DiscoveryReport& report) {
  EXPECT_EQ(metrics.Value("aid_rounds_total"),
            static_cast<uint64_t>(report.rounds));
  EXPECT_EQ(metrics.Value("aid_executions_total"), report.executions);
  EXPECT_EQ(metrics.Value("aid_speculative_executions_total"),
            report.speculative_executions);
  EXPECT_EQ(metrics.Value("aid_steals_total"), report.steals);
  EXPECT_EQ(metrics.Value("aid_straggler_wait_micros_total"),
            report.straggler_wait_micros);
  EXPECT_EQ(metrics.Value("aid_crashed_trials_total"), report.crashed_trials);
  EXPECT_EQ(metrics.Value("aid_timed_out_trials_total"),
            report.timed_out_trials);
  EXPECT_EQ(metrics.Value("aid_respawns_total"), report.respawns);
}

TEST(SessionTelemetryTest, OffByDefault) {
  auto model = MakeModel();
  ASSERT_NE(model, nullptr);
  auto session = SessionBuilder().WithModel(model.get()).Build();
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_EQ(session->telemetry(), nullptr);
  ASSERT_TRUE(session->Run().ok());
  const TelemetrySnapshot snapshot = session->TelemetrySnapshot();
  EXPECT_TRUE(snapshot.metrics.points.empty());
  EXPECT_TRUE(snapshot.spans.empty());
}

TEST(SessionTelemetryTest, MetricTotalsMirrorDiscoveryReportExactly) {
  auto model = MakeModel();
  ASSERT_NE(model, nullptr);
  auto session =
      SessionBuilder().WithModel(model.get()).WithTelemetry().Build();
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_NE(session->telemetry(), nullptr);
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  const TelemetrySnapshot snapshot = session->TelemetrySnapshot();
  ExpectMetricsMirrorReport(snapshot.metrics, report->discovery);
  EXPECT_GT(report->discovery.rounds, 0);
  EXPECT_GT(report->discovery.executions, 0u);
}

TEST(SessionTelemetryTest, SpanTreeCoversThePipeline) {
  auto model = MakeModel();
  ASSERT_NE(model, nullptr);
  auto session =
      SessionBuilder().WithModel(model.get()).WithTelemetry().Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  const std::vector<SpanRecord> spans = session->TelemetrySnapshot().spans;

  // Build() already announced the observation phase; Run() added the
  // statistical-debugging and AC-DAG construction phases.
  EXPECT_EQ(FindByName(spans, "observation").size(), 1u);
  EXPECT_EQ(FindByName(spans, "statistical_debugging").size(), 1u);
  EXPECT_EQ(FindByName(spans, "acdag_construction").size(), 1u);

  auto discovery = FindByName(spans, "discovery");
  ASSERT_EQ(discovery.size(), 1u);
  EXPECT_EQ(discovery[0]->parent, 0u);

  // The discovery phases nest under the discovery span, one round span per
  // reported round nests under a phase span.
  auto rounds = FindByName(spans, "round");
  EXPECT_EQ(rounds.size(), static_cast<size_t>(report->discovery.rounds));
  for (const SpanRecord* round : rounds) {
    const SpanRecord* phase = FindById(spans, round->parent);
    ASSERT_NE(phase, nullptr);
    EXPECT_TRUE(phase->name == "branch_prune" || phase->name == "giwp")
        << phase->name;
    EXPECT_EQ(phase->parent, discovery[0]->id);
  }

  // Everything the pipeline opened it also closed.
  for (const SpanRecord& span : spans) {
    EXPECT_NE(span.end_us, 0u) << span.name;
    EXPECT_LE(span.start_us, span.end_us) << span.name;
    EXPECT_FALSE(span.imported) << span.name;
  }
}

TEST(SessionTelemetryTest, ReportsAreBitIdenticalWithTelemetryOnAndOff) {
  auto model = MakeModel(21);
  ASSERT_NE(model, nullptr);

  auto plain = SessionBuilder().WithModel(model.get()).WithSeed(5).Build();
  ASSERT_TRUE(plain.ok()) << plain.status();
  auto plain_report = plain->Run();
  ASSERT_TRUE(plain_report.ok()) << plain_report.status();

  auto traced = SessionBuilder()
                    .WithModel(model.get())
                    .WithSeed(5)
                    .WithTelemetry()
                    .Build();
  ASSERT_TRUE(traced.ok()) << traced.status();
  auto traced_report = traced->Run();
  ASSERT_TRUE(traced_report.ok()) << traced_report.status();

  EXPECT_EQ(plain_report->discovery.causal_path,
            traced_report->discovery.causal_path);
  EXPECT_EQ(plain_report->discovery.spurious,
            traced_report->discovery.spurious);
  EXPECT_EQ(plain_report->discovery.rounds, traced_report->discovery.rounds);
  EXPECT_EQ(plain_report->discovery.executions,
            traced_report->discovery.executions);
  EXPECT_EQ(plain_report->discovery.speculative_executions,
            traced_report->discovery.speculative_executions);
  EXPECT_EQ(plain_report->root_cause, traced_report->root_cause);
}

TEST(SessionTelemetryTest, RepeatedRunsAccumulate) {
  auto model = MakeModel();
  ASSERT_NE(model, nullptr);
  auto session =
      SessionBuilder().WithModel(model.get()).WithTelemetry().Build();
  ASSERT_TRUE(session.ok()) << session.status();

  auto first = session->Run();
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = session->Run();
  ASSERT_TRUE(second.ok()) << second.status();

  const TelemetrySnapshot snapshot = session->TelemetrySnapshot();
  EXPECT_EQ(snapshot.metrics.Value("aid_rounds_total"),
            static_cast<uint64_t>(first->discovery.rounds) +
                static_cast<uint64_t>(second->discovery.rounds));
  EXPECT_EQ(snapshot.metrics.Value("aid_executions_total"),
            first->discovery.executions + second->discovery.executions);
  // One discovery span per run; the observation/AC-DAG phases ran once.
  EXPECT_EQ(FindByName(snapshot.spans, "discovery").size(), 2u);
  EXPECT_EQ(FindByName(snapshot.spans, "acdag_construction").size(), 1u);
}

TEST(SessionTelemetryTest, TagtBaselineIsNeverInstrumented) {
  auto model = MakeModel();
  ASSERT_NE(model, nullptr);
  auto session = SessionBuilder()
                     .WithModel(model.get())
                     .WithTagtBaseline()
                     .WithTelemetry()
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->tagt_baseline.has_value());
  EXPECT_GT(report->tagt_baseline->rounds, 0);

  // The baseline ran (and burned executions), but the metrics mirror the
  // main run's report alone -- the baseline would otherwise skew every
  // total away from the DiscoveryReport it is supposed to match.
  const TelemetrySnapshot snapshot = session->TelemetrySnapshot();
  ExpectMetricsMirrorReport(snapshot.metrics, report->discovery);
  EXPECT_EQ(FindByName(snapshot.spans, "discovery").size(), 1u);
}

TEST(SessionTelemetryTest, SharedBundleAggregatesAcrossSessions) {
  auto model = MakeModel();
  ASSERT_NE(model, nullptr);
  std::shared_ptr<Telemetry> shared = Telemetry::Create();

  uint64_t expected_rounds = 0;
  for (int i = 0; i < 2; ++i) {
    auto session =
        SessionBuilder().WithModel(model.get()).WithTelemetry(shared).Build();
    ASSERT_TRUE(session.ok()) << session.status();
    EXPECT_EQ(session->telemetry(), shared.get());
    auto report = session->Run();
    ASSERT_TRUE(report.ok()) << report.status();
    expected_rounds += static_cast<uint64_t>(report->discovery.rounds);
  }
  EXPECT_EQ(shared->Snapshot().metrics.Value("aid_rounds_total"),
            expected_rounds);

  // Passing a null shared bundle turns telemetry back off.
  auto off = SessionBuilder()
                 .WithModel(model.get())
                 .WithTelemetry()
                 .WithTelemetry(std::shared_ptr<Telemetry>())
                 .Build();
  ASSERT_TRUE(off.ok()) << off.status();
  EXPECT_EQ(off->telemetry(), nullptr);
}

TEST(SessionTelemetryTest, ParallelDispatchRecordsChunkSpansAndLatencies) {
  auto model = MakeModel();
  ASSERT_NE(model, nullptr);
  auto session = SessionBuilder()
                     .WithModel(model.get())
                     .WithTrials(3)
                     .WithParallelism(4)
                     .WithTelemetry()
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  const TelemetrySnapshot snapshot = session->TelemetrySnapshot();
  ExpectMetricsMirrorReport(snapshot.metrics, report->discovery);

  // Worker-side chunk spans must parent under round/batch spans via the
  // active-parent slot, never float as roots.
  auto chunks = FindByName(snapshot.spans, "chunk");
  ASSERT_FALSE(chunks.empty());
  for (const SpanRecord* chunk : chunks) {
    const SpanRecord* parent = FindById(snapshot.spans, chunk->parent);
    ASSERT_NE(parent, nullptr);
    EXPECT_TRUE(parent->name == "round" || parent->name == "round.batch")
        << parent->name;
  }
  // Per-replica chunk latency histograms observed at most one sample per
  // chunk (zero-microsecond model chunks are skipped).
  uint64_t chunk_samples =
      snapshot.metrics.Total("aid_chunk_latency_us");
  EXPECT_LE(chunk_samples, chunks.size());
}

#if AID_PROC_SUPPORTED

TEST(SessionTelemetryTest, PipeTransportPropagatesHostSpans) {
  auto model = MakeModel();
  ASSERT_NE(model, nullptr);
  auto session = SessionBuilder()
                     .WithModel(model.get())
                     .WithTrials(2)
                     .WithProcessIsolation(/*trial_deadline_ms=*/20000)
                     .WithTelemetry()
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  const TelemetrySnapshot snapshot = session->TelemetrySnapshot();
  ExpectMetricsMirrorReport(snapshot.metrics, report->discovery);

  // Wire latency histogram, labeled by the pipe transport (sub-microsecond
  // samples are skipped, so <= executions).
  const uint64_t wire_samples = snapshot.metrics.Value(
      "aid_trial_latency_us", {{"transport", "pipe"}});
  EXPECT_GT(wire_samples, 0u);
  EXPECT_LE(wire_samples, report->discovery.executions);

  // Each engine-side trial span adopted the subject host's spans: both
  // host.trial and host.subject_run, imported, re-based and clamped inside
  // the trial span that requested the execution.
  auto trials = FindByName(snapshot.spans, "trial");
  ASSERT_FALSE(trials.empty());
  auto host_trials = FindByName(snapshot.spans, "host.trial");
  auto host_runs = FindByName(snapshot.spans, "host.subject_run");
  EXPECT_EQ(host_trials.size(), trials.size());
  EXPECT_EQ(host_runs.size(), trials.size());
  for (const SpanRecord* host_span : host_trials) {
    EXPECT_TRUE(host_span->imported);
    const SpanRecord* trial = FindById(snapshot.spans, host_span->parent);
    ASSERT_NE(trial, nullptr);
    EXPECT_EQ(trial->name, "trial");
    EXPECT_FALSE(trial->imported);
    EXPECT_GE(host_span->start_us, trial->start_us);
    EXPECT_LE(host_span->end_us, trial->end_us);
    EXPECT_EQ(host_span->lane, trial->lane);
  }
}

TEST(SessionTelemetryTest, PipeTransportReportMatchesInProcess) {
  auto model = MakeModel();
  ASSERT_NE(model, nullptr);
  auto in_process =
      SessionBuilder().WithModel(model.get()).WithTrials(2).Build();
  ASSERT_TRUE(in_process.ok()) << in_process.status();
  auto baseline = in_process->Run();
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  auto isolated = SessionBuilder()
                      .WithModel(model.get())
                      .WithTrials(2)
                      .WithProcessIsolation(/*trial_deadline_ms=*/20000)
                      .WithTelemetry()
                      .Build();
  ASSERT_TRUE(isolated.ok()) << isolated.status();
  auto traced = isolated->Run();
  ASSERT_TRUE(traced.ok()) << traced.status();

  // Span propagation over the wire must not perturb the discovery outcome.
  EXPECT_EQ(baseline->discovery.causal_path, traced->discovery.causal_path);
  EXPECT_EQ(baseline->discovery.spurious, traced->discovery.spurious);
  EXPECT_EQ(baseline->discovery.rounds, traced->discovery.rounds);
  EXPECT_EQ(baseline->discovery.executions, traced->discovery.executions);
}

#endif  // AID_PROC_SUPPORTED

}  // namespace
}  // namespace aid
