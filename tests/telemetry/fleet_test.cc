// Socket-transport telemetry tests over a real loopback runner fleet:
// span context propagates through the runner daemon into its forked
// subject hosts and the host-side spans come back imported under the
// engine-side trial spans; metric totals still mirror the DiscoveryReport;
// and the runner's shared stats block answers FetchRunnerStats with a
// valid JSON document counting the trials it served.

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "net/runner.h"
#include "synth/generator.h"
#include "synth/model.h"
#include "telemetry/json.h"

namespace aid {
namespace {

#if AID_NET_SUPPORTED

class TelemetryFleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticAppOptions options;
    options.max_threads = 12;
    options.seed = 7;
    auto model = GenerateSyntheticApp(options);
    ASSERT_TRUE(model.ok()) << model.status();
    model_ = std::move(*model);
    for (int i = 0; i < 2; ++i) {
      auto runner = Runner::Start();
      ASSERT_TRUE(runner.ok()) << runner.status();
      fleet_.push_back((*runner)->endpoint().ToString());
      runners_.push_back(std::move(*runner));
    }
  }

  std::unique_ptr<GroundTruthModel> model_;
  std::vector<std::unique_ptr<Runner>> runners_;
  std::vector<std::string> fleet_;
};

const SpanRecord* FindById(const std::vector<SpanRecord>& spans,
                           uint64_t id) {
  for (const SpanRecord& span : spans) {
    if (span.id == id) return &span;
  }
  return nullptr;
}

std::vector<const SpanRecord*> FindByName(
    const std::vector<SpanRecord>& spans, const std::string& name) {
  std::vector<const SpanRecord*> out;
  for (const SpanRecord& span : spans) {
    if (span.name == name) out.push_back(&span);
  }
  return out;
}

/// Pulls the unsigned integer following `"key":` out of a flat JSON
/// document. Good enough for the self-describing stats schema; the
/// document's syntax is separately checked with JsonLooksValid.
uint64_t JsonUintField(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

TEST_F(TelemetryFleetTest, HostSpansImportUnderEngineTrialSpans) {
  auto session = SessionBuilder()
                     .WithModel(model_.get())
                     .WithTrials(3)
                     .WithParallelism(2)
                     .WithRemoteFleet(fleet_, /*trial_deadline_ms=*/20000)
                     .WithTelemetry()
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->discovery.crashed_trials, 0u);
  ASSERT_EQ(report->discovery.timed_out_trials, 0u);

  const TelemetrySnapshot snapshot = session->TelemetrySnapshot();
  const std::vector<SpanRecord>& spans = snapshot.spans;

  // Every remote execution opened an engine-side trial span...
  auto trials = FindByName(spans, "trial");
  ASSERT_FALSE(trials.empty());
  EXPECT_EQ(trials.size(),
            static_cast<size_t>(report->discovery.executions));

  // ...and each one adopted the pair of host-side spans the VERDICT
  // carried back: host.trial (whole request handling) and host.subject_run
  // (just the subject execution), re-based into the engine's timeline and
  // clamped inside their trial span.
  auto host_trials = FindByName(spans, "host.trial");
  auto host_runs = FindByName(spans, "host.subject_run");
  EXPECT_EQ(host_trials.size(), trials.size());
  EXPECT_EQ(host_runs.size(), trials.size());
  for (const auto* list : {&host_trials, &host_runs}) {
    for (const SpanRecord* host_span : *list) {
      EXPECT_TRUE(host_span->imported) << host_span->name;
      const SpanRecord* trial = FindById(spans, host_span->parent);
      ASSERT_NE(trial, nullptr);
      EXPECT_EQ(trial->name, "trial");
      EXPECT_GE(host_span->start_us, trial->start_us);
      EXPECT_LE(host_span->end_us, trial->end_us);
      EXPECT_EQ(host_span->lane, trial->lane);
    }
  }

  // Cross-process nesting bottoms out in the engine's own tree: trial and
  // chunk spans both parent under the round (or batch) span the engine
  // published in the active-parent slot.
  for (const SpanRecord* trial : trials) {
    const SpanRecord* parent = FindById(spans, trial->parent);
    ASSERT_NE(parent, nullptr);
    EXPECT_TRUE(parent->name == "round" || parent->name == "round.batch")
        << parent->name;
  }
}

TEST_F(TelemetryFleetTest, MetricsMirrorReportAndLabelTheSocketTransport) {
  auto session = SessionBuilder()
                     .WithModel(model_.get())
                     .WithTrials(3)
                     .WithParallelism(2)
                     .WithRemoteFleet(fleet_, /*trial_deadline_ms=*/20000)
                     .WithTelemetry()
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  const MetricsSnapshot metrics = session->TelemetrySnapshot().metrics;
  EXPECT_EQ(metrics.Value("aid_rounds_total"),
            static_cast<uint64_t>(report->discovery.rounds));
  EXPECT_EQ(metrics.Value("aid_executions_total"),
            report->discovery.executions);
  EXPECT_EQ(metrics.Value("aid_speculative_executions_total"),
            report->discovery.speculative_executions);
  EXPECT_EQ(metrics.Value("aid_steals_total"), report->discovery.steals);
  EXPECT_EQ(metrics.Value("aid_crashed_trials_total"), 0u);

  // Socket wire latencies landed in the per-transport histogram.
  const uint64_t socket_samples = metrics.Value(
      "aid_trial_latency_us", {{"transport", "socket"}});
  EXPECT_GT(socket_samples, 0u);
  EXPECT_LE(socket_samples, report->discovery.executions);
  EXPECT_EQ(metrics.Value("aid_trial_latency_us", {{"transport", "pipe"}}),
            0u);

  // The fleet's per-endpoint instruments exist for both runners.
  for (const std::string& endpoint : fleet_) {
    EXPECT_NE(metrics.Find("aid_endpoint_trial_latency_us",
                           {{"endpoint", endpoint}}),
              nullptr)
        << endpoint;
  }
}

TEST_F(TelemetryFleetTest, TelemetryDoesNotPerturbTheFleetReport) {
  auto plain = SessionBuilder()
                   .WithModel(model_.get())
                   .WithTrials(3)
                   .WithParallelism(2)
                   .WithRemoteFleet(fleet_, /*trial_deadline_ms=*/20000)
                   .Build();
  ASSERT_TRUE(plain.ok()) << plain.status();
  auto plain_report = plain->Run();
  ASSERT_TRUE(plain_report.ok()) << plain_report.status();

  auto traced = SessionBuilder()
                    .WithModel(model_.get())
                    .WithTrials(3)
                    .WithParallelism(2)
                    .WithRemoteFleet(fleet_, /*trial_deadline_ms=*/20000)
                    .WithTelemetry()
                    .Build();
  ASSERT_TRUE(traced.ok()) << traced.status();
  auto traced_report = traced->Run();
  ASSERT_TRUE(traced_report.ok()) << traced_report.status();

  EXPECT_EQ(plain_report->discovery.causal_path,
            traced_report->discovery.causal_path);
  EXPECT_EQ(plain_report->discovery.spurious,
            traced_report->discovery.spurious);
  EXPECT_EQ(plain_report->discovery.rounds, traced_report->discovery.rounds);
  EXPECT_EQ(plain_report->discovery.executions,
            traced_report->discovery.executions);
  EXPECT_EQ(plain_report->discovery.speculative_executions,
            traced_report->discovery.speculative_executions);
}

TEST_F(TelemetryFleetTest, FetchRunnerStatsCountsServedTrials) {
  auto session = SessionBuilder()
                     .WithModel(model_.get())
                     .WithTrials(3)
                     .WithParallelism(2)
                     .WithRemoteFleet(fleet_, /*trial_deadline_ms=*/20000)
                     .WithTelemetry()
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  uint64_t fleet_trials = 0;
  for (const std::string& endpoint : fleet_) {
    auto stats = FetchRunnerStats(endpoint);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_TRUE(JsonLooksValid(*stats)) << *stats;
    EXPECT_NE(stats->find("\"trial_latency_us\""), std::string::npos);
    EXPECT_GE(JsonUintField(*stats, "sessions_started"), 1u);
    fleet_trials += JsonUintField(*stats, "trials");
  }
  // Both runners together served every remote execution of the run.
  EXPECT_EQ(fleet_trials, report->discovery.executions);
}

TEST_F(TelemetryFleetTest, StatsConnectionIsNotASession) {
  const int sessions_before = runners_[0]->sessions_started();
  auto stats = FetchRunnerStats(fleet_[0]);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(JsonLooksValid(*stats)) << *stats;
  EXPECT_EQ(JsonUintField(*stats, "trials"), 0u);
  // The stats path forks a host like any connection; it reports the daemon
  // as one more started session but serves zero trials.
  EXPECT_EQ(runners_[0]->sessions_started(), sessions_before + 1);
}

#else  // !AID_NET_SUPPORTED

TEST(TelemetryFleetTest, FetchRunnerStatsUnimplementedOnThisPlatform) {
  auto stats = FetchRunnerStats("127.0.0.1:1");
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnimplemented);
}

#endif  // AID_NET_SUPPORTED

}  // namespace
}  // namespace aid
