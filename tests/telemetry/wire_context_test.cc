// Wire-level tests of the telemetry extensions to the subject protocol:
// the optional SPAN_CONTEXT trailing fields on RUN_TRIAL and the optional
// host-telemetry block on VERDICT. The extensions are additive -- with the
// flags off the encoded bytes are identical to the pre-telemetry layout,
// and a decoder fed a context-free payload (what an old peer would send)
// reports the extension absent instead of failing.

#include <string>

#include <gtest/gtest.h>

#include "proc/wire.h"

namespace aid {
namespace {

TEST(RunTrialWireTest, RoundTripsWithoutSpanContext) {
  RunTrialMsg msg;
  msg.trial_index = 41;
  msg.intervened = {3, 7, 11};
  const std::string payload = EncodeRunTrial(msg);

  auto decoded = DecodeRunTrial(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->trial_index, 41u);
  EXPECT_EQ(decoded->intervened, msg.intervened);
  EXPECT_FALSE(decoded->has_span_context);
  EXPECT_EQ(decoded->trace_id, 0u);
  EXPECT_EQ(decoded->parent_span_id, 0u);
}

TEST(RunTrialWireTest, RoundTripsSpanContext) {
  RunTrialMsg msg;
  msg.trial_index = 5;
  msg.intervened = {2};
  msg.has_span_context = true;
  msg.trace_id = 0xFEEDFACE12345678ull;
  msg.parent_span_id = 99;
  const std::string payload = EncodeRunTrial(msg);

  auto decoded = DecodeRunTrial(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->trial_index, 5u);
  EXPECT_EQ(decoded->intervened, msg.intervened);
  EXPECT_TRUE(decoded->has_span_context);
  EXPECT_EQ(decoded->trace_id, 0xFEEDFACE12345678ull);
  EXPECT_EQ(decoded->parent_span_id, 99u);
}

TEST(RunTrialWireTest, ContextFreeBytesMatchPreTelemetryLayout) {
  // With the flag off the context fields must not leak into the encoding,
  // whatever values they hold: the bytes are what an old build emitted.
  RunTrialMsg plain;
  plain.trial_index = 12;
  plain.intervened = {1, 2};

  RunTrialMsg with_garbage = plain;
  with_garbage.trace_id = 0xDEAD;
  with_garbage.parent_span_id = 0xBEEF;  // has_span_context still false

  EXPECT_EQ(EncodeRunTrial(plain), EncodeRunTrial(with_garbage));

  // The extension is strictly additive: the context-free payload is a
  // proper prefix of the context-carrying one.
  RunTrialMsg with_context = plain;
  with_context.has_span_context = true;
  with_context.trace_id = 1;
  with_context.parent_span_id = 2;
  const std::string longer = EncodeRunTrial(with_context);
  const std::string shorter = EncodeRunTrial(plain);
  ASSERT_LT(shorter.size(), longer.size());
  EXPECT_EQ(longer.compare(0, shorter.size(), shorter), 0);
}

TEST(VerdictWireTest, RoundTripsWithoutHostTelemetry) {
  VerdictMsg msg;
  msg.failed = true;
  const std::string payload = EncodeVerdict(msg);

  auto decoded = DecodeVerdict(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->failed);
  EXPECT_FALSE(decoded->has_host_telemetry);
  EXPECT_TRUE(decoded->host_spans.empty());
}

TEST(VerdictWireTest, RoundTripsHostTelemetryBlock) {
  VerdictMsg msg;
  msg.failed = false;
  msg.has_host_telemetry = true;
  msg.host_recv_us = 123456789;
  msg.host_spans.push_back(WireHostSpan{"host.trial", 100, 900});
  msg.host_spans.push_back(WireHostSpan{"host.subject_run", 150, 850});
  const std::string payload = EncodeVerdict(msg);

  auto decoded = DecodeVerdict(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_FALSE(decoded->failed);
  ASSERT_TRUE(decoded->has_host_telemetry);
  EXPECT_EQ(decoded->host_recv_us, 123456789u);
  ASSERT_EQ(decoded->host_spans.size(), 2u);
  EXPECT_EQ(decoded->host_spans[0].name, "host.trial");
  EXPECT_EQ(decoded->host_spans[0].start_us, 100u);
  EXPECT_EQ(decoded->host_spans[0].end_us, 900u);
  EXPECT_EQ(decoded->host_spans[1].name, "host.subject_run");
  EXPECT_EQ(decoded->host_spans[1].start_us, 150u);
  EXPECT_EQ(decoded->host_spans[1].end_us, 850u);
}

TEST(VerdictWireTest, TelemetryFreeBytesMatchPreTelemetryLayout) {
  VerdictMsg plain;
  plain.failed = false;

  VerdictMsg with_garbage = plain;
  with_garbage.host_recv_us = 777;  // has_host_telemetry still false
  with_garbage.host_spans.push_back(WireHostSpan{"ignored", 1, 2});
  EXPECT_EQ(EncodeVerdict(plain), EncodeVerdict(with_garbage));

  VerdictMsg with_block = plain;
  with_block.has_host_telemetry = true;
  with_block.host_recv_us = 1;
  const std::string longer = EncodeVerdict(with_block);
  const std::string shorter = EncodeVerdict(plain);
  ASSERT_LT(shorter.size(), longer.size());
  EXPECT_EQ(longer.compare(0, shorter.size(), shorter), 0);
}

TEST(VerdictWireTest, EmptyHostSpanListStillRoundTrips) {
  // A host with tracing compiled out answers a SPAN_CONTEXT request with
  // the telemetry block present but empty (the recv anchor alone).
  VerdictMsg msg;
  msg.has_host_telemetry = true;
  msg.host_recv_us = 42;
  auto decoded = DecodeVerdict(EncodeVerdict(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->has_host_telemetry);
  EXPECT_EQ(decoded->host_recv_us, 42u);
  EXPECT_TRUE(decoded->host_spans.empty());
}

TEST(StatsWireTest, StatsReplyRoundTripsItsJsonDocument) {
  StatsReplyMsg msg;
  msg.json = "{\"uptime_seconds\":12,\"trials\":34}";
  auto decoded = DecodeStatsReply(EncodeStatsReply(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->json, msg.json);
}

TEST(StatsWireTest, StatsMessageTypesHaveNames) {
  EXPECT_EQ(ProcMsgTypeName(ProcMsgType::kStats), "STATS");
  EXPECT_EQ(ProcMsgTypeName(ProcMsgType::kStatsReply), "STATS_REPLY");
}

}  // namespace
}  // namespace aid
