// Exporter and JSON-layer tests: JsonWriter goldens, the strict
// JsonLooksValid checker, and end-to-end validity + format checks for all
// three exporters (metrics JSON, Prometheus text, Chrome trace-event JSON)
// plus the combined TelemetryJson document.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/json.h"
#include "telemetry/telemetry.h"

namespace aid {
namespace {

// ------------------------------------------------------------ JsonWriter --

TEST(JsonWriterTest, GoldenObject) {
  JsonWriter w;
  w.BeginObject()
      .Key("trials")
      .U64(12)
      .Key("ok")
      .Bool(true)
      .Key("skew")
      .I64(-3)
      .Key("ratio")
      .Double(1.5)
      .Key("none")
      .Null()
      .Key("tags")
      .BeginArray()
      .String("fleet")
      .String("net")
      .EndArray()
      .EndObject();
  EXPECT_EQ(w.str(),
            "{\"trials\":12,\"ok\":true,\"skew\":-3,\"ratio\":1.5,"
            "\"none\":null,\"tags\":[\"fleet\",\"net\"]}");
}

TEST(JsonWriterTest, EmptyContainersAndRawSplice) {
  JsonWriter w;
  w.BeginObject()
      .Key("empty_obj")
      .BeginObject()
      .EndObject()
      .Key("empty_arr")
      .BeginArray()
      .EndArray()
      .Key("raw")
      .Raw("{\"nested\":[1,2]}")
      .EndObject();
  EXPECT_EQ(w.str(),
            "{\"empty_obj\":{},\"empty_arr\":[],"
            "\"raw\":{\"nested\":[1,2]}}");
  EXPECT_TRUE(JsonLooksValid(w.str()));
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  // A control character without a shorthand escape becomes \u00XX.
  const std::string escaped = JsonEscape(std::string(1, '\x01'));
  EXPECT_EQ(escaped, "\\u0001");
}

TEST(JsonWriterTest, EscapedStringsStayValid) {
  JsonWriter w;
  w.BeginObject().Key("k\"ey").String("v\\al\nue").EndObject();
  EXPECT_TRUE(JsonLooksValid(w.str()));
}

// -------------------------------------------------------- JsonLooksValid --

TEST(JsonLooksValidTest, AcceptsWellFormedDocuments) {
  EXPECT_TRUE(JsonLooksValid("{}"));
  EXPECT_TRUE(JsonLooksValid("[]"));
  EXPECT_TRUE(JsonLooksValid("null"));
  EXPECT_TRUE(JsonLooksValid("true"));
  EXPECT_TRUE(JsonLooksValid("-12.5e3"));
  EXPECT_TRUE(JsonLooksValid("\"string\""));
  EXPECT_TRUE(JsonLooksValid(" { \"a\" : [ 1 , 2.5 , \"x\" , null ] } "));
}

TEST(JsonLooksValidTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonLooksValid(""));
  EXPECT_FALSE(JsonLooksValid("{"));
  EXPECT_FALSE(JsonLooksValid("{\"a\":}"));
  EXPECT_FALSE(JsonLooksValid("{\"a\":1,}"));
  EXPECT_FALSE(JsonLooksValid("[1,]"));
  EXPECT_FALSE(JsonLooksValid("{'a':1}"));
  EXPECT_FALSE(JsonLooksValid("{\"a\":1}tail"));
  EXPECT_FALSE(JsonLooksValid("{\"a\":01}"));
  EXPECT_FALSE(JsonLooksValid("\"unterminated"));
  EXPECT_FALSE(JsonLooksValid("{\"a\" 1}"));
  EXPECT_FALSE(JsonLooksValid("nul"));
}

TEST(JsonLooksValidTest, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep.append(200, ']');
  EXPECT_FALSE(JsonLooksValid(deep));  // depth capped at 128
  std::string shallow(100, '[');
  shallow.append(100, ']');
  EXPECT_TRUE(JsonLooksValid(shallow));
}

// --------------------------------------------------------------exporters --

MetricsSnapshot PopulatedSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("aid_rounds_total")->Add(6);
  registry.GetCounter("aid_steals_total", {{"replica", "1"}})->Add(2);
  registry.GetGauge("aid_replica_ewma_micros", {{"replica", "1"}})->Set(450);
  Histogram* h = registry.GetHistogram("aid_trial_latency_us",
                                       {{"transport", "socket"}}, {100, 1000});
  h->Record(50);
  h->Record(100);
  h->Record(5000);
  return registry.Snapshot();
}

TEST(MetricsJsonTest, ProducesValidJsonWithEverySeries) {
  const std::string json = MetricsJson(PopulatedSnapshot());
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  EXPECT_NE(json.find("\"aid_rounds_total\""), std::string::npos);
  EXPECT_NE(json.find("\"aid_steals_total\""), std::string::npos);
  EXPECT_NE(json.find("\"aid_replica_ewma_micros\""), std::string::npos);
  EXPECT_NE(json.find("\"aid_trial_latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"transport\""), std::string::npos);
}

TEST(MetricsJsonTest, EmptySnapshotIsStillValid) {
  const std::string json = MetricsJson(MetricsSnapshot{});
  EXPECT_TRUE(JsonLooksValid(json)) << json;
}

TEST(PrometheusTextTest, ExpandsHistogramsAndTypesEverySeries) {
  const std::string text = PrometheusText(PopulatedSnapshot());
  EXPECT_NE(text.find("# TYPE aid_rounds_total counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE aid_replica_ewma_micros gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE aid_trial_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("aid_rounds_total 6"), std::string::npos);
  EXPECT_NE(text.find("replica=\"1\""), std::string::npos);
  // Histogram expansion: per-bound _bucket lines, the +Inf bucket, and the
  // _sum/_count companions. Bucket counts are cumulative in the exposition
  // format: le="1000" covers the le="100" samples too.
  EXPECT_NE(text.find("aid_trial_latency_us_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"100\""), std::string::npos);
  EXPECT_NE(text.find("le=\"1000\""), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("aid_trial_latency_us_sum"), std::string::npos);
  EXPECT_NE(text.find("aid_trial_latency_us_count"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(ChromeTraceJsonTest, EmitsCompleteEventsWithSpanIdsInArgs) {
  Tracer tracer;
  const uint64_t root = tracer.StartSpan("discovery");
  const uint64_t child = tracer.StartSpan("round", root);
  tracer.EndSpan(child);
  tracer.EndSpan(root);
  const uint64_t open = tracer.StartSpan("abandoned", root);
  (void)open;

  const std::string json = ChromeTraceJson(tracer.Spans());
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"discovery\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"round\""), std::string::npos);
  // Span / parent ids ride in "args" so tools can re-check nesting
  // structurally (the CI trace validator depends on this).
  EXPECT_NE(json.find("\"span_id\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\""), std::string::npos);
  // The still-open span renders too (zero duration), instead of vanishing.
  EXPECT_NE(json.find("\"name\":\"abandoned\""), std::string::npos);
}

TEST(ChromeTraceJsonTest, EmptyTraceIsValid) {
  const std::string json = ChromeTraceJson({});
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TelemetryJsonTest, CombinesMetricsAndSpans) {
  Telemetry telemetry;
  telemetry.metrics().GetCounter("aid_rounds_total")->Add(1);
  ScopedSpan(telemetry.tracer(), "observation").End();
  const TelemetrySnapshot snapshot = telemetry.Snapshot();
  ASSERT_EQ(snapshot.spans.size(), 1u);

  const std::string json = TelemetryJson(snapshot);
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"observation\""), std::string::npos);
}

TEST(TelemetryTest, TracerDisabledWhenSpansAreOff) {
  TelemetryOptions options;
  options.trace_spans = false;
  Telemetry telemetry(options);
  EXPECT_EQ(telemetry.tracer(), nullptr);
  // Metrics still work; the snapshot simply carries no spans.
  telemetry.metrics().GetCounter("c")->Add(2);
  const TelemetrySnapshot snapshot = telemetry.Snapshot();
  EXPECT_EQ(snapshot.metrics.Value("c"), 2u);
  EXPECT_TRUE(snapshot.spans.empty());
  EXPECT_TRUE(JsonLooksValid(TelemetryJson(snapshot)));
}

TEST(TelemetryTest, LatencyHistogramUsesConfiguredBounds) {
  TelemetryOptions options;
  options.latency_bucket_bounds_us = {10, 20, 30};
  Telemetry telemetry(options);
  Histogram* h = telemetry.LatencyHistogram("aid_trial_latency_us");
  EXPECT_EQ(h->bounds(), (std::vector<uint64_t>{10, 20, 30}));
  // Default options fall back to the standard ladder.
  Telemetry standard;
  EXPECT_EQ(standard.LatencyHistogram("aid_trial_latency_us")->bounds().size(),
            kLatencyBucketBoundCount);
}

TEST(TelemetryTest, ActiveParentSlotRoundTrips) {
  Telemetry telemetry;
  EXPECT_EQ(telemetry.active_parent(), 0u);
  telemetry.SetActiveParent(17);
  EXPECT_EQ(telemetry.active_parent(), 17u);
  telemetry.SetActiveParent(0);
  EXPECT_EQ(telemetry.active_parent(), 0u);
}

}  // namespace
}  // namespace aid
