// Tracer tests: dense span ids, parent links, per-thread lanes, open-span
// semantics, cross-clock ImportSpan re-basing (clamped into the parent so
// skew can never break nesting), and the ScopedSpan RAII wrapper's
// null-tolerance / move / idempotent-End contract.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/trace.h"

namespace aid {
namespace {

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans,
                           uint64_t id) {
  for (const SpanRecord& span : spans) {
    if (span.id == id) return &span;
  }
  return nullptr;
}

TEST(TracerTest, SpanIdsAreDenseFromOne) {
  Tracer tracer;
  EXPECT_EQ(tracer.StartSpan("a"), 1u);
  EXPECT_EQ(tracer.StartSpan("b"), 2u);
  EXPECT_EQ(tracer.StartSpan("c"), 3u);
  EXPECT_EQ(tracer.span_count(), 3u);
}

TEST(TracerTest, NestingRecordsParentLinks) {
  Tracer tracer;
  const uint64_t root = tracer.StartSpan("discovery");
  const uint64_t round = tracer.StartSpan("round", root);
  const uint64_t trial = tracer.StartSpan("trial", round);
  tracer.EndSpan(trial);
  tracer.EndSpan(round);
  tracer.EndSpan(root);

  const std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(FindSpan(spans, root)->parent, 0u);
  EXPECT_EQ(FindSpan(spans, round)->parent, root);
  EXPECT_EQ(FindSpan(spans, trial)->parent, round);
  for (const SpanRecord& span : spans) {
    EXPECT_FALSE(span.imported);
    EXPECT_GE(span.end_us, span.start_us);
    EXPECT_NE(span.end_us, 0u) << span.name;
  }
}

TEST(TracerTest, OpenSpanHasZeroEnd) {
  Tracer tracer;
  const uint64_t id = tracer.StartSpan("open");
  const std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].end_us, 0u);
  tracer.EndSpan(id);
  EXPECT_NE(tracer.Spans()[0].end_us, 0u);
}

TEST(TracerTest, EndSpanIsIdempotentAndTolerant) {
  Tracer tracer;
  const uint64_t id = tracer.StartSpan("once");
  tracer.EndSpan(id);
  const uint64_t end = tracer.Spans()[0].end_us;
  tracer.EndSpan(id);     // already closed: no-op
  tracer.EndSpan(0);      // invalid: no-op
  tracer.EndSpan(999);    // unknown: no-op
  EXPECT_EQ(tracer.Spans()[0].end_us, end);
  EXPECT_EQ(tracer.span_count(), 1u);
}

TEST(TracerTest, EachThreadGetsItsOwnLane) {
  Tracer tracer;
  const uint64_t main_lane = tracer.CurrentLane();
  EXPECT_EQ(tracer.CurrentLane(), main_lane);  // stable on re-query
  uint64_t other_lane = main_lane;
  std::thread worker([&] {
    other_lane = tracer.CurrentLane();
    tracer.EndSpan(tracer.StartSpan("worker-span"));
  });
  worker.join();
  EXPECT_NE(other_lane, main_lane);
  EXPECT_EQ(tracer.Spans()[0].lane, other_lane);
}

TEST(TracerTest, ImportSpanMarksImportedAndInheritsParentLane) {
  Tracer tracer;
  uint64_t lane_in_thread = 0;
  uint64_t parent = 0;
  std::thread worker([&] {
    lane_in_thread = tracer.CurrentLane();
    parent = tracer.StartSpan("trial");
    tracer.EndSpan(parent);
  });
  worker.join();

  const SpanRecord* parent_span = FindSpan(tracer.Spans(), parent);
  ASSERT_NE(parent_span, nullptr);
  const uint64_t imported = tracer.ImportSpan(
      "host.trial", parent, parent_span->start_us, parent_span->end_us);
  const SpanRecord* span = FindSpan(tracer.Spans(), imported);
  ASSERT_NE(span, nullptr);
  EXPECT_TRUE(span->imported);
  EXPECT_EQ(span->parent, parent);
  // Imported from the main thread, but rendered on the parent's lane so the
  // cross-process child sits inside its parent's track.
  EXPECT_EQ(span->lane, lane_in_thread);
}

TEST(TracerTest, ImportSpanClampsIntoParentWindow) {
  Tracer tracer;
  const uint64_t parent = tracer.StartSpan("trial");
  tracer.EndSpan(parent);
  const SpanRecord* parent_span = FindSpan(tracer.Spans(), parent);
  ASSERT_NE(parent_span, nullptr);

  // Deliberately skewed child: starts before the parent and ends after it.
  const uint64_t start =
      parent_span->start_us == 0 ? 0 : parent_span->start_us - 1;
  const uint64_t end = parent_span->end_us + 1000000;
  const uint64_t imported = tracer.ImportSpan("host.trial", parent, start, end);

  const SpanRecord* span = FindSpan(tracer.Spans(), imported);
  ASSERT_NE(span, nullptr);
  EXPECT_GE(span->start_us, parent_span->start_us);
  EXPECT_LE(span->end_us, parent_span->end_us);
  EXPECT_LE(span->start_us, span->end_us);
}

TEST(TracerTest, ImportSpanWithoutParentKeepsCallerTimes) {
  Tracer tracer;
  const uint64_t imported = tracer.ImportSpan("orphan", 0, 10, 20);
  const SpanRecord* span = FindSpan(tracer.Spans(), imported);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->start_us, 10u);
  EXPECT_EQ(span->end_us, 20u);
  EXPECT_TRUE(span->imported);
}

TEST(TracerTest, ConcurrentSpanRecordingKeepsIdsDense) {
  Tracer tracer;
  constexpr int kThreads = 8;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpans; ++i) {
        tracer.EndSpan(tracer.StartSpan("s"));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads) * kSpans);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].id, i + 1);
    EXPECT_NE(spans[i].end_us, 0u);
  }
}

TEST(ScopedSpanTest, EndsOnScopeExit) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "scoped");
    EXPECT_NE(span.id(), 0u);
    EXPECT_EQ(tracer.Spans()[0].end_us, 0u);
  }
  EXPECT_NE(tracer.Spans()[0].end_us, 0u);
}

TEST(ScopedSpanTest, NullTracerIsANoOp) {
  ScopedSpan span(nullptr, "nothing");
  EXPECT_EQ(span.id(), 0u);
  span.End();  // must not crash
}

TEST(ScopedSpanTest, ExplicitEndIsIdempotent) {
  Tracer tracer;
  ScopedSpan span(&tracer, "once");
  span.End();
  const uint64_t end = tracer.Spans()[0].end_us;
  span.End();
  EXPECT_EQ(tracer.Spans()[0].end_us, end);
  EXPECT_EQ(span.id(), 0u);  // End() releases the id
}

TEST(ScopedSpanTest, MoveTransfersOwnership) {
  Tracer tracer;
  ScopedSpan outer;
  {
    ScopedSpan inner(&tracer, "moved");
    outer = std::move(inner);
    EXPECT_EQ(inner.id(), 0u);  // NOLINT(bugprone-use-after-move)
  }
  // `inner` was destroyed but ownership had moved: the span is still open.
  EXPECT_EQ(tracer.Spans()[0].end_us, 0u);
  outer.End();
  EXPECT_NE(tracer.Spans()[0].end_us, 0u);
}

TEST(ScopedSpanTest, MoveAssignEndsThePreviousSpan) {
  Tracer tracer;
  ScopedSpan a(&tracer, "first");
  ScopedSpan b(&tracer, "second");
  a = std::move(b);
  // "first" must have been closed by the assignment; "second" is still open.
  const std::vector<SpanRecord> spans = tracer.Spans();
  EXPECT_NE(spans[0].end_us, 0u);
  EXPECT_EQ(spans[1].end_us, 0u);
}

}  // namespace
}  // namespace aid
