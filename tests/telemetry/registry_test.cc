// MetricsRegistry tests: interning semantics (pointer stability, label
// order insensitivity, cardinality), histogram bucket-edge behavior under
// Prometheus `le` semantics, snapshot lookups, and lock-free hot-path
// correctness under concurrent writers (run under TSan in CI).

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.h"

namespace aid {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0u);
  g.Set(7);
  g.Set(3);
  EXPECT_EQ(g.value(), 3u);
}

TEST(HistogramTest, SampleOnBoundLandsInThatBucket) {
  // `le` semantics: a sample equal to a bucket's upper bound belongs to
  // that bucket, not the next one.
  Histogram h({10, 20, 30});
  h.Record(10);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  h.Record(11);
  EXPECT_EQ(h.bucket_count(1), 1u);
  h.Record(30);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 10u + 11u + 30u);
}

TEST(HistogramTest, SampleAboveEveryBoundLandsInOverflowBucket) {
  Histogram h({10, 20});
  h.Record(21);
  h.Record(1000000);
  // bounds().size() + 1 buckets; the last one is +Inf.
  EXPECT_EQ(h.bounds().size(), 2u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
}

TEST(HistogramTest, ZeroSampleLandsInFirstBucket) {
  Histogram h({10, 20});
  h.Record(0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, EmptyBoundsFallBackToDefaultLatencyLadder) {
  Histogram h({});
  ASSERT_EQ(h.bounds().size(), kLatencyBucketBoundCount);
  for (size_t i = 0; i < kLatencyBucketBoundCount; ++i) {
    EXPECT_EQ(h.bounds()[i], kLatencyBucketBoundsUs[i]);
  }
}

TEST(MetricsRegistryTest, InternReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("aid_rounds_total");
  Counter* b = registry.GetCounter("aid_rounds_total");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(registry.series_count(), 1u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter(
      "aid_steals_total", {{"replica", "0"}, {"endpoint", "localhost:1"}});
  Counter* b = registry.GetCounter(
      "aid_steals_total", {{"endpoint", "localhost:1"}, {"replica", "0"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.series_count(), 1u);
}

TEST(MetricsRegistryTest, DistinctLabelsCreateDistinctSeries) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("aid_steals_total", {{"replica", "0"}});
  Counter* b = registry.GetCounter("aid_steals_total", {{"replica", "1"}});
  Counter* unlabeled = registry.GetCounter("aid_steals_total");
  EXPECT_NE(a, b);
  EXPECT_NE(a, unlabeled);
  EXPECT_EQ(registry.series_count(), 3u);

  a->Add(2);
  b->Add(5);
  unlabeled->Add(1);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.Value("aid_steals_total", {{"replica", "0"}}), 2u);
  EXPECT_EQ(snapshot.Value("aid_steals_total", {{"replica", "1"}}), 5u);
  EXPECT_EQ(snapshot.Value("aid_steals_total"), 1u);
  EXPECT_EQ(snapshot.Total("aid_steals_total"), 8u);
}

TEST(MetricsRegistryTest, KindsWithSameNameAreSeparateSeries) {
  // A gauge and a counter under the same name must not alias: the gauge
  // carries a label, so they land in different series.
  MetricsRegistry registry;
  registry.GetCounter("aid_rounds_total")->Add(4);
  registry.GetGauge("aid_replica_ewma_micros", {{"replica", "0"}})->Set(123);
  registry.GetHistogram("aid_trial_latency_us", {{"transport", "pipe"}})
      ->Record(777);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.points.size(), 3u);

  const MetricPoint* counter = snapshot.Find("aid_rounds_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->kind, MetricKind::kCounter);
  EXPECT_EQ(counter->value, 4u);

  const MetricPoint* gauge =
      snapshot.Find("aid_replica_ewma_micros", {{"replica", "0"}});
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->kind, MetricKind::kGauge);
  EXPECT_EQ(gauge->value, 123u);

  const MetricPoint* histogram =
      snapshot.Find("aid_trial_latency_us", {{"transport", "pipe"}});
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->kind, MetricKind::kHistogram);
  EXPECT_EQ(histogram->count, 1u);
  EXPECT_EQ(histogram->sum, 777u);
  EXPECT_EQ(histogram->buckets.size(), histogram->bounds.size() + 1);
  // Histogram Value() resolves to the sample count.
  EXPECT_EQ(snapshot.Value("aid_trial_latency_us", {{"transport", "pipe"}}),
            1u);
}

TEST(MetricsRegistryTest, HistogramBoundsApplyOnlyOnFirstIntern) {
  MetricsRegistry registry;
  Histogram* first = registry.GetHistogram("h", {}, {1, 2, 3});
  Histogram* second = registry.GetHistogram("h", {}, {9, 99});
  EXPECT_EQ(first, second);
  EXPECT_EQ(first->bounds(), (std::vector<uint64_t>{1, 2, 3}));
}

TEST(MetricsRegistryTest, FindMissingSeriesReturnsNull) {
  MetricsRegistry registry;
  registry.GetCounter("present");
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.Find("absent"), nullptr);
  EXPECT_EQ(snapshot.Find("present", {{"no", "label"}}), nullptr);
  EXPECT_EQ(snapshot.Value("absent"), 0u);
  EXPECT_EQ(snapshot.Total("absent"), 0u);
}

TEST(MetricsRegistryTest, ConcurrentWritersLoseNothing) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Every thread interns on its own (exercising the registry lock
      // concurrently) and hammers the shared instruments.
      Counter* counter = registry.GetCounter("aid_executions_total");
      Histogram* histogram = registry.GetHistogram(
          "aid_trial_latency_us", {{"transport", "test"}}, {100, 1000});
      Gauge* gauge = registry.GetGauge("aid_replica_ewma_micros",
                                       {{"replica", std::to_string(t)}});
      for (int i = 0; i < kIncrements; ++i) {
        counter->Add();
        histogram->Record(static_cast<uint64_t>(i % 2000));
        gauge->Set(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.Value("aid_executions_total"),
            static_cast<uint64_t>(kThreads) * kIncrements);
  const MetricPoint* histogram =
      snapshot.Find("aid_trial_latency_us", {{"transport", "test"}});
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count, static_cast<uint64_t>(kThreads) * kIncrements);
  uint64_t bucket_total = 0;
  for (uint64_t b : histogram->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, histogram->count);
  // One gauge series per thread plus counter plus histogram.
  EXPECT_EQ(registry.series_count(), static_cast<size_t>(kThreads) + 2);
}

TEST(MetricsRegistryTest, SnapshotIsDecoupledFromLiveInstruments) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  counter->Add(1);
  MetricsSnapshot snapshot = registry.Snapshot();
  counter->Add(100);
  EXPECT_EQ(snapshot.Value("c"), 1u);
  EXPECT_EQ(registry.Snapshot().Value("c"), 101u);
}

}  // namespace
}  // namespace aid
