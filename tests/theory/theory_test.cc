// Validates the Section 6 closed forms against exact enumeration: Lemma 1
// (horizontal/vertical expansion), the symmetric AC-DAG search space, and
// the bound relationships of Figure 6.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "synth/generator.h"
#include "theory/bounds.h"
#include "theory/enumerate.h"

namespace aid {
namespace {

TEST(EnumerateTest, PlainChainHasTwoToTheN) {
  // A chain of n predicates admits every subset as a candidate path: 2^n.
  GroundTruthModel model;
  model.AddFailure();
  std::vector<PredicateId> chain;
  for (int i = 0; i < 5; ++i) chain.push_back(model.AddPredicate(i));
  for (int i = 0; i + 1 < 5; ++i) {
    model.AddTemporalEdge(chain[static_cast<size_t>(i)],
                          chain[static_cast<size_t>(i) + 1]);
  }
  model.SetCausalChain({chain[0]});
  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(CountCpdSolutions(*dag), 32u);
}

TEST(EnumerateTest, PaperExampleThreeIsFifteen) {
  // Figure 5(a): two branches of 3 predicates each.
  // W_CPD = 2 * (2^3 - 1) + 1 = 15 (the paper's Example 3).
  auto model = MakeSymmetricModel(/*junctions=*/1, /*branches=*/2,
                                  /*chain_len=*/3, /*causal=*/1, /*seed=*/1);
  ASSERT_TRUE(model.ok());
  auto dag = (*model)->BuildAcDag();
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(CountCpdSolutions(*dag), 15u);
}

TEST(EnumerateTest, HorizontalExpansionLemma) {
  // Two separate branches of sizes 2 and 3 under one junction:
  // W = 1 + (2^2 - 1) + (2^3 - 1) = 11.
  GroundTruthModel model;
  model.AddFailure();
  std::vector<PredicateId> left, right;
  for (int i = 0; i < 2; ++i) left.push_back(model.AddPredicate(i));
  for (int i = 0; i < 3; ++i) right.push_back(model.AddPredicate(10 + i));
  model.AddTemporalEdge(left[0], left[1]);
  model.AddTemporalEdge(right[0], right[1]);
  model.AddTemporalEdge(right[1], right[2]);
  model.SetCausalChain({left[0]});
  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(CountCpdSolutions(*dag),
            HorizontalExpansion(1u << 2, 1u << 3));
  EXPECT_EQ(CountCpdSolutions(*dag), 11u);
}

TEST(EnumerateTest, VerticalExpansionLemma) {
  // Chain of 2 followed (all-before-all) by a chain of 3:
  // W = 2^2 * 2^3 = 32 -- a 5-chain, consistent with multiplication.
  GroundTruthModel model;
  model.AddFailure();
  std::vector<PredicateId> chain;
  for (int i = 0; i < 5; ++i) chain.push_back(model.AddPredicate(i));
  for (int i = 0; i + 1 < 5; ++i) {
    model.AddTemporalEdge(chain[static_cast<size_t>(i)],
                          chain[static_cast<size_t>(i) + 1]);
  }
  model.SetCausalChain({chain[0]});
  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(CountCpdSolutions(*dag), VerticalExpansion(1u << 2, 1u << 3));
}

// Property sweep: the symmetric-DAG formula (B(2^n - 1) + 1)^J matches the
// exact enumerator for every small shape.
class SymmetricSearchSpaceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SymmetricSearchSpaceTest, FormulaMatchesEnumeration) {
  const auto [junctions, branches, chain_len] = GetParam();
  auto model = MakeSymmetricModel(junctions, branches, chain_len,
                                  /*causal=*/1, /*seed=*/3);
  ASSERT_TRUE(model.ok());
  auto dag = (*model)->BuildAcDag();
  ASSERT_TRUE(dag.ok());

  const double per_block =
      branches * (std::pow(2.0, chain_len) - 1.0) + 1.0;
  const double expected = std::pow(per_block, junctions);
  EXPECT_EQ(CountCpdSolutions(*dag), static_cast<uint64_t>(expected + 0.5));

  SymmetricDagShape shape{junctions, branches, chain_len};
  EXPECT_NEAR(CpdSearchSpaceLog2Symmetric(shape), std::log2(expected), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SymmetricSearchSpaceTest,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 3)));

TEST(BoundsTest, CpdSearchSpaceIsNeverLargerThanGt) {
  for (int j = 1; j <= 4; ++j) {
    for (int b = 1; b <= 5; ++b) {
      for (int n = 1; n <= 4; ++n) {
        SymmetricDagShape shape{j, b, n};
        EXPECT_LE(CpdSearchSpaceLog2Symmetric(shape),
                  GtSearchSpaceLog2(shape.total()) + 1e-9)
            << "J=" << j << " B=" << b << " n=" << n;
      }
    }
  }
}

TEST(BoundsTest, Theorem2LowerBoundShrinksWithS1) {
  const int64_t n = 100;
  const int64_t d = 5;
  EXPECT_NEAR(CpdLowerBound(n, d, 0.0), GtLowerBound(n, d), 1e-9);
  EXPECT_LT(CpdLowerBound(n, d, 2.0), CpdLowerBound(n, d, 1.0));
  EXPECT_LT(CpdLowerBound(n, d, 1.0), GtLowerBound(n, d));
  EXPECT_GT(CpdLowerBound(n, d, 5.0), 0.0);
}

TEST(BoundsTest, Theorem3UpperBoundShrinksWithS2) {
  const int64_t n = 100;
  const int64_t d = 5;
  EXPECT_NEAR(AidUpperBoundPredicatePruning(n, d, 0.0), TagtUpperBound(n, d),
              1e-9);
  EXPECT_LT(AidUpperBoundPredicatePruning(n, d, 3.0),
            AidUpperBoundPredicatePruning(n, d, 1.0));
}

TEST(BoundsTest, BranchPruningBeatsTagtWhenJunctionsFewerThanCauses) {
  // Section 6.3.1: J log T + D log N_M < D log T + D log N_M iff J < D.
  const int64_t t = 8;
  const int64_t nm = 32;
  EXPECT_LT(AidUpperBoundBranchPruning(/*junctions=*/2, t, nm, /*d=*/5),
            static_cast<double>(5) * std::log2(static_cast<double>(t)) +
                5 * std::log2(static_cast<double>(nm)));
  // And not when J >= D.
  EXPECT_GE(AidUpperBoundBranchPruning(/*junctions=*/6, t, nm, /*d=*/5),
            AidUpperBoundBranchPruning(/*junctions=*/4, t, nm, /*d=*/5));
}

TEST(BoundsTest, Figure6RowsAreOrdered) {
  SymmetricDagShape shape{3, 4, 5};
  const int64_t d = 6;
  const auto lower = Figure6LowerBounds(shape, d, /*s1=*/2.0);
  const auto upper = Figure6UpperBounds(shape, d, /*s2=*/2.0);
  EXPECT_LE(lower.cpd, lower.gt);
  EXPECT_LE(upper.aid, upper.tagt);
  EXPECT_LE(lower.cpd, upper.aid);
  EXPECT_LE(lower.gt, upper.tagt);
}

TEST(BoundsTest, GroupTestingLowerBoundSanity) {
  EXPECT_DOUBLE_EQ(GtLowerBound(10, 0), 0.0);
  EXPECT_GT(GtLowerBound(10, 3), 0.0);
  EXPECT_DOUBLE_EQ(TagtUpperBound(1, 3), 0.0);
}

// Cross-check the DP enumerator against brute force (all 2^n subsets,
// chain-ness tested via reachability) on random generated DAGs.
class EnumeratorBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(EnumeratorBruteForceTest, DpMatchesSubsetEnumeration) {
  SyntheticAppOptions options;
  options.max_threads = 3;
  options.chain_max = 2;
  options.branch_max = 2;
  options.blocks_max = 1;
  options.seed = static_cast<uint64_t>(GetParam());
  auto model = GenerateSyntheticApp(options);
  ASSERT_TRUE(model.ok());
  auto dag = (*model)->BuildAcDag();
  ASSERT_TRUE(dag.ok());

  std::vector<PredicateId> nodes;
  for (PredicateId id : dag->nodes()) {
    if (id != dag->failure()) nodes.push_back(id);
  }
  if (nodes.size() > 16) GTEST_SKIP() << "too large for brute force";

  uint64_t brute = 0;
  const uint64_t limit = 1ULL << nodes.size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    std::vector<PredicateId> subset;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (mask & (1ULL << i)) subset.push_back(nodes[i]);
    }
    bool chain = true;
    for (size_t i = 0; i < subset.size() && chain; ++i) {
      for (size_t j = i + 1; j < subset.size() && chain; ++j) {
        if (!dag->Reaches(subset[i], subset[j]) &&
            !dag->Reaches(subset[j], subset[i])) {
          chain = false;
        }
      }
    }
    if (chain) ++brute;
  }
  EXPECT_EQ(CountCpdSolutions(*dag), brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumeratorBruteForceTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace aid
