#include "synth/model.h"

#include <gtest/gtest.h>

namespace aid {
namespace {

TEST(ModelTest, UninterventedExecutionObservesEverythingAndFails) {
  GroundTruthModel model;
  model.AddFailure();
  const PredicateId a = model.AddPredicate(0);
  const PredicateId b = model.AddPredicate(1);
  const PredicateId noise = model.AddPredicate(2);
  model.AddTemporalEdge(a, b);
  model.SetCausalChain({a, b});

  const PredicateLog log = model.Execute({});
  EXPECT_TRUE(log.failed);
  EXPECT_TRUE(log.Has(a));
  EXPECT_TRUE(log.Has(b));
  EXPECT_TRUE(log.Has(noise));  // spontaneous
  EXPECT_TRUE(log.Has(model.failure()));
}

TEST(ModelTest, InterveningAnyChainMemberStopsTheFailure) {
  GroundTruthModel model;
  model.AddFailure();
  std::vector<PredicateId> chain;
  for (int i = 0; i < 4; ++i) chain.push_back(model.AddPredicate(i));
  model.SetCausalChain(chain);

  for (PredicateId c : chain) {
    const PredicateLog log = model.Execute({c});
    EXPECT_FALSE(log.failed) << "intervened " << c;
    EXPECT_FALSE(log.Has(c));
    // Everything downstream of c on the chain vanishes too.
    bool after = false;
    for (PredicateId other : chain) {
      if (other == c) {
        after = true;
        continue;
      }
      EXPECT_EQ(log.Has(other), !after) << "chain member " << other;
    }
  }
}

TEST(ModelTest, InterveningNoiseDoesNotStopTheFailure) {
  GroundTruthModel model;
  model.AddFailure();
  const PredicateId cause = model.AddPredicate(0);
  const PredicateId noise = model.AddPredicate(1);
  model.SetCausalChain({cause});

  const PredicateLog log = model.Execute({noise});
  EXPECT_TRUE(log.failed);
  EXPECT_FALSE(log.Has(noise));
  EXPECT_TRUE(log.Has(cause));
}

TEST(ModelTest, ConjunctiveParentsRequireAll) {
  GroundTruthModel model;
  model.AddFailure();
  const PredicateId a = model.AddPredicate(0);
  const PredicateId b = model.AddPredicate(1);
  const PredicateId both = model.AddPredicate(2);
  model.SetCausalChain({a});
  model.SetTrueParents(both, {a, b});

  EXPECT_TRUE(model.Execute({}).Has(both));
  EXPECT_FALSE(model.Execute({a}).Has(both));
  EXPECT_FALSE(model.Execute({b}).Has(both));
}

TEST(ModelTest, OutOfOrderParentIdsConverge) {
  // A parent with a *larger* id than its child: fixpoint propagation must
  // still settle (Figure 4's P10 depends on P11).
  GroundTruthModel model;
  model.AddFailure();
  const PredicateId child = model.AddPredicate(0);
  const PredicateId parent = model.AddPredicate(1);
  model.SetCausalChain({parent});
  model.SetTrueParents(child, {parent});

  EXPECT_TRUE(model.Execute({}).Has(child));
  EXPECT_FALSE(model.Execute({parent}).Has(child));
}

TEST(ModelTest, TargetCountsExecutionsAndReplicatesTrials) {
  GroundTruthModel model;
  model.AddFailure();
  const PredicateId a = model.AddPredicate(0);
  model.SetCausalChain({a});

  ModelTarget target(&model);
  auto result = target.RunIntervened({}, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->logs.size(), 3u);
  EXPECT_TRUE(result->AnyFailed());
  EXPECT_EQ(target.executions(), 3);

  auto stopped = target.RunIntervened({a}, 1);
  ASSERT_TRUE(stopped.ok());
  EXPECT_FALSE(stopped->AnyFailed());
  EXPECT_EQ(target.executions(), 4);
}

TEST(ModelTest, AcDagContainsChainInOrder) {
  GroundTruthModel model;
  model.AddFailure();
  std::vector<PredicateId> chain;
  for (int i = 0; i < 3; ++i) chain.push_back(model.AddPredicate(i));
  model.AddTemporalEdge(chain[0], chain[1]);
  model.AddTemporalEdge(chain[1], chain[2]);
  model.SetCausalChain(chain);

  auto dag = model.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  EXPECT_TRUE(dag->Reaches(chain[0], chain[2]));
  EXPECT_TRUE(dag->Reaches(chain[2], model.failure()));
}

}  // namespace
}  // namespace aid
