#include "synth/generator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace aid {
namespace {

TEST(GeneratorTest, RejectsInvalidOptions) {
  SyntheticAppOptions options;
  options.max_threads = 1;
  options.min_threads = 2;
  EXPECT_FALSE(GenerateSyntheticApp(options).ok());

  options = SyntheticAppOptions{};
  options.chain_min = 0;
  EXPECT_FALSE(GenerateSyntheticApp(options).ok());
}

TEST(GeneratorTest, SameSeedSameApp) {
  SyntheticAppOptions options;
  options.max_threads = 12;
  options.seed = 7;
  auto a = GenerateSyntheticApp(options);
  auto b = GenerateSyntheticApp(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->size(), (*b)->size());
  EXPECT_EQ((*a)->causal_chain(), (*b)->causal_chain());
}

TEST(SymmetricModelTest, ShapeMatchesParameters) {
  auto model = MakeSymmetricModel(/*junctions=*/3, /*branches=*/4,
                                  /*chain_len=*/2, /*causal=*/3, /*seed=*/1);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->size(), 3u * 4u * 2u);
  EXPECT_EQ((*model)->causal_chain().size(), 3u);
  auto dag = (*model)->BuildAcDag();
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->size(), 3u * 4u * 2u + 1);
  // J junctions of B branches each: the first level of each block has B
  // members (one per branch head).
  const auto levels = dag->TopoLevels();
  int wide_levels = 0;
  for (const auto& level : levels) {
    if (level.size() >= 4) ++wide_levels;
  }
  EXPECT_GE(wide_levels, 3);
}

TEST(SymmetricModelTest, RejectsBadCausalCount) {
  EXPECT_FALSE(MakeSymmetricModel(2, 2, 2, 0, 1).ok());
  EXPECT_FALSE(MakeSymmetricModel(2, 2, 2, 5, 1).ok());  // > J * n
  EXPECT_TRUE(MakeSymmetricModel(2, 2, 2, 4, 1).ok());
}

// Property sweep over MAXt and seeds: structural invariants the paper's
// benchmark depends on.
class GeneratorPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeneratorPropertyTest, GeneratedAppsSatisfyBenchmarkInvariants) {
  const auto [max_threads, seed] = GetParam();
  SyntheticAppOptions options;
  options.max_threads = max_threads;
  options.seed = static_cast<uint64_t>(seed);
  auto model = GenerateSyntheticApp(options);
  ASSERT_TRUE(model.ok());
  const GroundTruthModel& m = **model;

  const size_t n = m.size();
  ASSERT_GE(n, 3u);
  const size_t d = m.causal_chain().size();
  EXPECT_GE(d, 1u);
  // D stays below the group-testing crossover N / log2 N (paper Section 2).
  const double cap =
      std::max(1.0, static_cast<double>(n) / std::log2(static_cast<double>(n)));
  EXPECT_LE(static_cast<double>(d), cap + 1e-9);

  auto dag = m.BuildAcDag();
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->size(), n + 1);  // no predicate dropped

  // The causal chain is a chain of the AC-DAG (deterministic effect).
  for (size_t i = 0; i + 1 < m.causal_chain().size(); ++i) {
    EXPECT_TRUE(dag->Reaches(m.causal_chain()[i], m.causal_chain()[i + 1]));
  }

  // Fully discriminative: the unintervened run observes every predicate.
  const PredicateLog log = m.Execute({});
  EXPECT_TRUE(log.failed);
  for (PredicateId id : m.predicates()) {
    EXPECT_TRUE(log.Has(id));
  }

  // Counterfactuality: each chain member stops the failure; no lone
  // non-chain predicate does.
  for (PredicateId id : m.predicates()) {
    const bool on_chain =
        std::find(m.causal_chain().begin(), m.causal_chain().end(), id) !=
        m.causal_chain().end();
    EXPECT_EQ(!m.Execute({id}).failed, on_chain) << "pred " << id;
  }

  // AC-DAG completeness w.r.t. true causality (paper Section 4): whenever
  // intervening on P suppresses Q, the AC-DAG must contain the edge P ; Q.
  // (Check a sample: suppression of any predicate by any chain member.)
  for (PredicateId cause : m.causal_chain()) {
    const PredicateLog log = m.Execute({cause});
    for (PredicateId effect : m.predicates()) {
      if (effect == cause) continue;
      if (!log.Has(effect)) {
        EXPECT_TRUE(dag->Reaches(cause, effect))
            << "true cause " << cause << " -> " << effect
            << " missing from the AC-DAG";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorPropertyTest,
    ::testing::Combine(::testing::Values(2, 6, 14, 26, 40),
                       ::testing::Values(1, 2, 3, 4, 5, 6)));

}  // namespace
}  // namespace aid
