// Soundness of static AC-DAG pruning: for every shipped target -- all six
// case studies plus the fig7/fig8 synthetics -- a session with static
// analysis enabled must discover the bit-identical causal path while
// spending no more executions than the unpruned baseline. (Spurious sets
// may legitimately differ: pruning can drop whole dependence-disconnected
// nodes the baseline had to test and discard.)

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/session.h"
#include "casestudies/case_study.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

struct ParityResult {
  DiscoveryReport baseline;
  DiscoveryReport analyzed;
};

template <typename Configure>
ParityResult RunBothWays(Configure&& configure) {
  ParityResult result;
  SessionBuilder baseline_builder;
  configure(baseline_builder);
  auto baseline = baseline_builder.WithSeed(11).Build();
  EXPECT_TRUE(baseline.ok()) << baseline.status();
  auto baseline_report = baseline->Run();
  EXPECT_TRUE(baseline_report.ok()) << baseline_report.status();
  result.baseline = baseline_report->discovery;

  SessionBuilder analyzed_builder;
  configure(analyzed_builder);
  auto analyzed =
      analyzed_builder.WithSeed(11).WithStaticAnalysis().Build();
  EXPECT_TRUE(analyzed.ok()) << analyzed.status();
  auto analyzed_report = analyzed->Run();
  EXPECT_TRUE(analyzed_report.ok()) << analyzed_report.status();
  result.analyzed = analyzed_report->discovery;
  return result;
}

void ExpectParity(const ParityResult& result) {
  // The root cause and the whole causal path are bit-identical; pruning is
  // only allowed to make them cheaper to reach.
  EXPECT_EQ(result.analyzed.causal_path, result.baseline.causal_path);
  EXPECT_EQ(result.analyzed.root_cause(), result.baseline.root_cause());
  EXPECT_LE(result.analyzed.executions, result.baseline.executions);
  EXPECT_TRUE(result.analyzed.analysis.ran);
  EXPECT_FALSE(result.baseline.analysis.ran);
}

class CaseStudyParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CaseStudyParityTest, IdenticalRootCauseFewerExecutions) {
  const std::string& key = GetParam();
  const ParityResult result = RunBothWays(
      [&](SessionBuilder& b) { b.WithCaseStudy(key); });
  ExpectParity(result);
  // Case studies are real VM programs: the analyzer must find their
  // hand-written code clean.
  EXPECT_EQ(result.analyzed.analysis.lint_errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllCaseStudies, CaseStudyParityTest,
                         ::testing::ValuesIn(CaseStudyKeys()),
                         [](const auto& info) { return info.param; });

TEST(SyntheticParityTest, GeneratedAppsAcrossSeeds) {
  for (const uint64_t seed : {1ull, 7ull, 23ull}) {
    SyntheticAppOptions options;
    options.max_threads = 12;
    options.seed = seed;
    auto model = GenerateSyntheticApp(options);
    ASSERT_TRUE(model.ok()) << model.status();

    const ParityResult result = RunBothWays(
        [&](SessionBuilder& b) { b.WithModel(model->get()); });
    ExpectParity(result);
  }
}

TEST(SyntheticParityTest, SymmetricModelPrunesJoinEdges) {
  // Figure 5(c): branch tails feed the merge head only temporally; the
  // generator deliberately declares no dependence channel for them, so a
  // multi-branch symmetric model must lose edges under pruning.
  auto model = MakeSymmetricModel(/*junctions=*/3, /*branches=*/3,
                                  /*chain_len=*/2, /*causal=*/4, /*seed=*/5);
  ASSERT_TRUE(model.ok()) << model.status();

  const ParityResult result = RunBothWays(
      [&](SessionBuilder& b) { b.WithModel(model->get()); });
  ExpectParity(result);
  EXPECT_GT(result.analyzed.analysis.edges_pruned, 0u);
  EXPECT_GT(result.analyzed.analysis.edges_before, 0u);
}

TEST(SyntheticParityTest, FlakyModelBackendHonorsAnalysis) {
  SyntheticAppOptions options;
  options.max_threads = 8;
  options.seed = 3;
  auto model = GenerateSyntheticApp(options);
  ASSERT_TRUE(model.ok()) << model.status();

  const ParityResult result = RunBothWays([&](SessionBuilder& b) {
    b.WithFlakyModel(model->get(), 0.9, /*seed=*/17);
  });
  ExpectParity(result);
}

TEST(SyntheticParityTest, AnalysisSummaryRoundsTripThroughReport) {
  auto model = MakeSymmetricModel(/*junctions=*/2, /*branches=*/2,
                                  /*chain_len=*/2, /*causal=*/3, /*seed=*/9);
  ASSERT_TRUE(model.ok()) << model.status();

  auto session = SessionBuilder()
                     .WithModel(model->get())
                     .WithStaticAnalysis()
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->discovery.analysis.ran);
  // Pruned counters never exceed their totals.
  EXPECT_LE(report->discovery.analysis.edges_pruned,
            report->discovery.analysis.edges_before);
  EXPECT_LE(report->discovery.analysis.nodes_pruned,
            report->discovery.analysis.nodes_before);
}

TEST(SyntheticParityTest, PruningDisabledLeavesDagUntouched) {
  auto model = MakeSymmetricModel(/*junctions=*/3, /*branches=*/3,
                                  /*chain_len=*/2, /*causal=*/4, /*seed=*/5);
  ASSERT_TRUE(model.ok()) << model.status();

  AnalysisOptions options;
  options.enabled = true;
  options.prune_edges = false;
  auto session = SessionBuilder()
                     .WithModel(model->get())
                     .WithSeed(11)
                     .WithStaticAnalysis(options)
                     .Build();
  ASSERT_TRUE(session.ok()) << session.status();
  auto report = session->Run();
  ASSERT_TRUE(report.ok()) << report.status();

  auto baseline = SessionBuilder().WithModel(model->get()).WithSeed(11).Build();
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  auto baseline_report = baseline->Run();
  ASSERT_TRUE(baseline_report.ok()) << baseline_report.status();

  // With pruning off the run is indistinguishable from the baseline.
  EXPECT_TRUE(SameDiscoveryOutcome(report->discovery,
                                   baseline_report->discovery));
  EXPECT_EQ(report->discovery.analysis.edges_pruned, 0u);
}

TEST(SyntheticParityTest, PrebuiltTargetRejectsSessionLevelAnalysis) {
  auto model = MakeSymmetricModel(/*junctions=*/2, /*branches=*/2,
                                  /*chain_len=*/2, /*causal=*/3, /*seed=*/9);
  ASSERT_TRUE(model.ok()) << model.status();
  auto prebuilt = MakeModelSessionTarget(model->get());
  ASSERT_TRUE(prebuilt.ok()) << prebuilt.status();
  auto session = SessionBuilder()
                     .WithTarget(std::move(*prebuilt))
                     .WithStaticAnalysis()
                     .Build();
  ASSERT_FALSE(session.ok());
  EXPECT_NE(session.status().message().find("factory backend"),
            std::string::npos);
}

}  // namespace
}  // namespace aid
