// Tests of the static analyzer: per-method CFG/dataflow facts
// (analysis/cfg.h) and whole-program lint + may-influence analysis
// (analysis/analyzer.h) on hand-built programs.

#include "analysis/analyzer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/cfg.h"
#include "common/logging.h"
#include "runtime/program.h"

namespace aid {
namespace {

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

bool HasFinding(const ProgramAnalysis& analysis, std::string_view code) {
  for (const LintFinding& f : analysis.findings()) {
    if (f.code == code) return true;
  }
  return false;
}

Instr MakeInstr(Op op, Reg a = kNoReg, Reg b = kNoReg, Reg c = kNoReg,
                int64_t imm = 0) {
  Instr instr;
  instr.op = op;
  instr.a = a;
  instr.b = b;
  instr.c = c;
  instr.imm = imm;
  return instr;
}

// ProgramBuilder refuses (by design) to emit the malformations the lint
// catalog exists for; corrupt a validly-built program in place instead,
// the same way hostile wire bytes would present it.
MethodDef& MutableMethod(Program& program, std::string_view name) {
  const SymbolId id = program.method_names().Find(name);
  return const_cast<std::vector<MethodDef>&>(
      program.methods())[static_cast<size_t>(id)];
}

Program BuildOrDie(ProgramBuilder& b, std::string_view entry) {
  auto program = b.Build(entry);
  AID_CHECK(program.ok());
  return std::move(*program);
}

// ---------------------------------------------------------------------------
// MethodCfg on hand-built method bodies.

TEST(MethodCfgTest, StraightLineEdgesAndReachability) {
  MethodDef method;
  method.name = "m";
  method.code = {MakeInstr(Op::kLoadConst, 0, kNoReg, kNoReg, 7),
                 MakeInstr(Op::kReturn, 0)};
  const MethodCfg cfg = MethodCfg::Build(method);

  ASSERT_EQ(cfg.size(), 2u);  // exit node id
  EXPECT_EQ(cfg.Successors(0), std::vector<int>{1});
  EXPECT_EQ(cfg.Successors(1), std::vector<int>{2});  // return -> exit
  EXPECT_TRUE(cfg.Reachable(0));
  EXPECT_TRUE(cfg.Reachable(1));
  EXPECT_TRUE(cfg.Reachable(2));
}

TEST(MethodCfgTest, BranchSuccessorsAndControlDependence) {
  // 0: jump-if-zero r0 -> 3
  // 1: load r1           (taken only when r0 != 0)
  // 2: jump -> 3
  // 3: return
  MethodDef method;
  method.name = "m";
  method.code = {MakeInstr(Op::kJumpIfZero, 0, kNoReg, kNoReg, 3),
                 MakeInstr(Op::kLoadConst, 1, kNoReg, kNoReg, 1),
                 MakeInstr(Op::kJump, kNoReg, kNoReg, kNoReg, 3),
                 MakeInstr(Op::kReturn)};
  const MethodCfg cfg = MethodCfg::Build(method);

  EXPECT_TRUE(Contains(cfg.Successors(0), 1));
  EXPECT_TRUE(Contains(cfg.Successors(0), 3));
  // The branch arm is control-dependent on the branch; the merge point is
  // not (it executes either way).
  EXPECT_TRUE(Contains(cfg.ControlDeps(1), 0));
  EXPECT_FALSE(Contains(cfg.ControlDeps(3), 0));
  // The merge point post-dominates the branch.
  EXPECT_EQ(cfg.ImmediatePostdom(0), 3);
}

TEST(MethodCfgTest, UnreachableCodeAfterUnconditionalJump) {
  MethodDef method;
  method.name = "m";
  method.code = {MakeInstr(Op::kJump, kNoReg, kNoReg, kNoReg, 2),
                 MakeInstr(Op::kLoadConst, 0, kNoReg, kNoReg, 1),
                 MakeInstr(Op::kReturn)};
  const MethodCfg cfg = MethodCfg::Build(method);

  EXPECT_TRUE(cfg.Reachable(0));
  EXPECT_FALSE(cfg.Reachable(1));
  EXPECT_TRUE(cfg.Reachable(2));
}

TEST(MethodCfgTest, MaybeUnwrittenClearsAfterDefinition) {
  MethodDef method;
  method.name = "m";
  method.code = {MakeInstr(Op::kLoadConst, 3, kNoReg, kNoReg, 9),
                 MakeInstr(Op::kReturn, 3)};
  const MethodCfg cfg = MethodCfg::Build(method);

  EXPECT_TRUE(cfg.MaybeUnwritten(0) & (1u << 3));   // before the write
  EXPECT_FALSE(cfg.MaybeUnwritten(1) & (1u << 3));  // after the write
  EXPECT_TRUE(cfg.MaybeUnwritten(1) & (1u << 4));   // untouched register
}

TEST(MethodCfgTest, MaybeUnwrittenSurvivesOneSidedBranch) {
  // r1 is written only when the branch at 0 is not taken.
  // 0: jump-if-zero r0 -> 2
  // 1: load r1
  // 2: return r1
  MethodDef method;
  method.name = "m";
  method.code = {MakeInstr(Op::kJumpIfZero, 0, kNoReg, kNoReg, 2),
                 MakeInstr(Op::kLoadConst, 1, kNoReg, kNoReg, 5),
                 MakeInstr(Op::kReturn, 1)};
  const MethodCfg cfg = MethodCfg::Build(method);

  EXPECT_TRUE(cfg.MaybeUnwritten(2) & (1u << 1));
}

TEST(MethodCfgTest, ReachingDefsMergeAcrossBranches) {
  // 0: jump-if-zero r0 -> 3
  // 1: load r1 = 1
  // 2: jump -> 4
  // 3: load r1 = 2
  // 4: return r1
  MethodDef method;
  method.name = "m";
  method.code = {MakeInstr(Op::kJumpIfZero, 0, kNoReg, kNoReg, 3),
                 MakeInstr(Op::kLoadConst, 1, kNoReg, kNoReg, 1),
                 MakeInstr(Op::kJump, kNoReg, kNoReg, kNoReg, 4),
                 MakeInstr(Op::kLoadConst, 1, kNoReg, kNoReg, 2),
                 MakeInstr(Op::kReturn, 1)};
  const MethodCfg cfg = MethodCfg::Build(method);

  const std::vector<int> defs = cfg.ReachingDefs(4, 1);
  EXPECT_TRUE(Contains(defs, 1));
  EXPECT_TRUE(Contains(defs, 3));
  EXPECT_FALSE(Contains(defs, -1));  // r1 is written on every path
  // r0 is never written: only the frame-initial pseudo-definition reaches.
  EXPECT_EQ(cfg.ReachingDefs(4, 0), std::vector<int>{-1});
}

TEST(MethodCfgTest, MalformedJumpTargetClampsToExit) {
  MethodDef method;
  method.name = "m";
  method.code = {MakeInstr(Op::kJump, kNoReg, kNoReg, kNoReg, 99),
                 MakeInstr(Op::kReturn)};
  const MethodCfg cfg = MethodCfg::Build(method);

  // Construction must not fail; the bad edge lands on the exit node.
  EXPECT_EQ(cfg.Successors(0), std::vector<int>{2});
  EXPECT_FALSE(cfg.Reachable(1));
}

TEST(MethodCfgTest, InfiniteLoopHasNoPostdominator) {
  MethodDef method;
  method.name = "m";
  method.code = {MakeInstr(Op::kJump, kNoReg, kNoReg, kNoReg, 0),
                 MakeInstr(Op::kReturn)};
  const MethodCfg cfg = MethodCfg::Build(method);

  EXPECT_EQ(cfg.ImmediatePostdom(0), -1);  // cannot reach the exit
  EXPECT_EQ(cfg.ImmediatePostdom(2), 2);   // the exit postdominates itself
}

TEST(MethodCfgTest, DefUseMasks) {
  const Instr add = MakeInstr(Op::kAdd, 0, 1, 2);
  EXPECT_EQ(InstrDefMask(add), 1u << 0);
  EXPECT_EQ(InstrUseMask(add), (1u << 1) | (1u << 2));
  EXPECT_EQ(InstrUseMask(MakeInstr(Op::kReturn)), 0u);  // kNoReg: no bits
  EXPECT_FALSE(InstrFallsThrough(Op::kJump));
  EXPECT_FALSE(InstrFallsThrough(Op::kReturn));
  EXPECT_TRUE(InstrFallsThrough(Op::kJumpIfZero));
  EXPECT_TRUE(InstrFallsThrough(Op::kLoadConst));
}

// ---------------------------------------------------------------------------
// Whole-program lint.

TEST(ProgramAnalysisTest, CleanProgramHasNoErrors) {
  ProgramBuilder b;
  b.Global("g", 0);
  b.Method("Main").LoadConst(0, 1).StoreGlobal("g", 0).Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  const ProgramAnalysis analysis = ProgramAnalysis::Analyze(*program);
  EXPECT_EQ(analysis.error_count(), 0u);
  EXPECT_TRUE(analysis.LintStatus().ok());
}

TEST(ProgramAnalysisTest, BadRandomBoundIsAnError) {
  // A zero bound would divide by zero inside the VM's RNG at run time;
  // the analyzer must reject it before any trial executes.
  ProgramBuilder b;
  b.Method("Main").Random(0, 1).Return();
  Program program = BuildOrDie(b, "Main");
  MutableMethod(program, "Main").code[0].imm = 0;

  const ProgramAnalysis analysis = ProgramAnalysis::Analyze(program);
  EXPECT_TRUE(HasFinding(analysis, "bad-random-bound"));
  EXPECT_FALSE(analysis.LintStatus().ok());
}

TEST(ProgramAnalysisTest, InvertedDelayRangeIsAnError) {
  ProgramBuilder b;
  b.Method("Main").DelayRand(2, 5).Return();
  Program program = BuildOrDie(b, "Main");
  auto& instr = MutableMethod(program, "Main").code[0];
  instr.imm = 5;
  instr.imm2 = 2;

  const ProgramAnalysis analysis = ProgramAnalysis::Analyze(program);
  EXPECT_TRUE(HasFinding(analysis, "bad-delay-range"));
  EXPECT_FALSE(analysis.LintStatus().ok());
}

TEST(ProgramAnalysisTest, StructuralCorruptionsAreErrors) {
  // One corruption per lint code, each applied to a fresh copy of the same
  // validly-built two-method program.
  ProgramBuilder b;
  b.Global("g", 0);
  b.Method("Callee").LoadConst(0, 1).Return(0);
  b.Method("Main").LoadConst(0, 1).StoreGlobal("g", 0).CallVoid("Callee")
      .Return();
  const Program pristine = BuildOrDie(b, "Main");

  struct Corruption {
    const char* code;
    void (*apply)(Program&);
  };
  const Corruption corruptions[] = {
      {"bad-opcode",
       [](Program& p) {
         MutableMethod(p, "Main").code[0].op = static_cast<Op>(200);
       }},
      {"register-out-of-range",
       [](Program& p) { MutableMethod(p, "Main").code[0].a = kNumRegs; }},
      {"bad-jump-target",
       [](Program& p) {
         MutableMethod(p, "Main").code[0] =
             MakeInstr(Op::kJump, kNoReg, kNoReg, kNoReg, 77);
       }},
      {"unknown-callee",
       [](Program& p) { MutableMethod(p, "Main").code[2].imm = 42; }},
      {"non-positive-cost",
       [](Program& p) { MutableMethod(p, "Main").code[0].cost = 0; }},
      {"missing-terminator",
       [](Program& p) { MutableMethod(p, "Main").code.back().op = Op::kNop; }},
      {"empty-method",
       [](Program& p) { MutableMethod(p, "Callee").code.clear(); }},
      {"bad-object",
       [](Program& p) { MutableMethod(p, "Main").code[1].obj = 99; }},
  };
  for (const Corruption& corruption : corruptions) {
    Program program = pristine;
    corruption.apply(program);
    const ProgramAnalysis analysis = ProgramAnalysis::Analyze(program);
    EXPECT_TRUE(HasFinding(analysis, corruption.code)) << corruption.code;
    EXPECT_FALSE(analysis.LintStatus().ok()) << corruption.code;
  }
}

TEST(ProgramAnalysisTest, ObjectKindMismatchWarns) {
  ProgramBuilder b;
  b.Global("g", 0);
  b.Array("arr", 4);
  b.Method("Main").LoadConst(1, 0).LoadGlobal(0, "g").ArrayLoad(2, "arr", 1)
      .Return();
  Program program = BuildOrDie(b, "Main");
  // Retarget the global load at the array symbol: declared, wrong kind.
  MutableMethod(program, "Main").code[1].obj =
      program.object_names().Find("arr");

  const ProgramAnalysis analysis = ProgramAnalysis::Analyze(program);
  EXPECT_TRUE(HasFinding(analysis, "object-kind-mismatch"));
  EXPECT_EQ(analysis.error_count(), 0u);  // mismatches execute safely
}

TEST(ProgramAnalysisTest, UndeclaredObjectWarns) {
  // LoadGlobal on a name never declared via Global(): the symbol exists
  // but carries no initial value, which the VM papers over with zero and
  // the analyzer flags.
  ProgramBuilder b;
  b.Method("Main").LoadGlobal(0, "phantom").Return(0);
  Program program = BuildOrDie(b, "Main");

  const ProgramAnalysis analysis = ProgramAnalysis::Analyze(program);
  EXPECT_TRUE(HasFinding(analysis, "undeclared-object"));
  EXPECT_EQ(analysis.error_count(), 0u);
}

TEST(ProgramAnalysisTest, UnreachableCodeIsAWarning) {
  ProgramBuilder b;
  b.Method("Main").Return().LoadConst(0, 1).Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  const ProgramAnalysis analysis = ProgramAnalysis::Analyze(*program);
  EXPECT_TRUE(HasFinding(analysis, "unreachable-code"));
  EXPECT_EQ(analysis.error_count(), 0u);  // warnings do not fail the lint
  EXPECT_TRUE(analysis.LintStatus().ok());
}

TEST(ProgramAnalysisTest, ReadOfNeverWrittenRegisterWarns) {
  ProgramBuilder b;
  b.Method("Main").Return(4);  // r4 holds its frame-initial zero
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  const ProgramAnalysis analysis = ProgramAnalysis::Analyze(*program);
  EXPECT_TRUE(HasFinding(analysis, "maybe-undefined-register"));
  EXPECT_TRUE(analysis.LintStatus().ok());
}

TEST(ProgramAnalysisTest, LintStatusNamesTheFailure) {
  ProgramBuilder b;
  b.Method("Main").Random(0, 1).Return();
  Program program = BuildOrDie(b, "Main");
  MutableMethod(program, "Main").code[0].imm = -3;

  const Status status = ProgramAnalysis::Analyze(program).LintStatus();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("bad-random-bound"), std::string::npos);
}

// ---------------------------------------------------------------------------
// May-influence relation and method reachability.

TEST(ProgramAnalysisTest, SerialCallsInfluenceForwardOnly) {
  ProgramBuilder b;
  b.Global("x", 0);
  b.Global("y", 0);
  b.Method("First").LoadConst(0, 1).StoreGlobal("x", 0).Return();
  b.Method("Second").LoadGlobal(0, "y").Return(0);
  b.Method("Main").CallVoid("First").CallVoid("Second").Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  const SymbolId first = program->method_names().Find("First");
  const SymbolId second = program->method_names().Find("Second");

  const ProgramAnalysis analysis = ProgramAnalysis::Analyze(*program);
  ASSERT_TRUE(analysis.LintStatus().ok());
  // First runs before Second in the caller, so it can influence it; the
  // reverse direction is provably impossible (disjoint state, no back
  // edge from the second call to the first).
  EXPECT_TRUE(analysis.MayInfluence(first, second));
  EXPECT_FALSE(analysis.MayInfluence(second, first));
  EXPECT_TRUE(analysis.MayInfluence(first, first));  // reflexive
}

TEST(ProgramAnalysisTest, SharedGlobalLinksSpawnedThreads) {
  ProgramBuilder b;
  b.Global("shared", 0);
  b.Method("Writer").LoadConst(0, 1).StoreGlobal("shared", 0).Return();
  b.Method("Reader").LoadGlobal(0, "shared").Return(0);
  b.Method("Main").Spawn(0, "Writer").Spawn(1, "Reader").Join(0).Join(1)
      .Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  const SymbolId writer = program->method_names().Find("Writer");
  const SymbolId reader = program->method_names().Find("Reader");

  const ProgramAnalysis analysis = ProgramAnalysis::Analyze(*program);
  // The store flows to the load through the shared global; the load alone
  // cannot affect the writer.
  EXPECT_TRUE(analysis.MayInfluence(writer, reader));
  EXPECT_FALSE(analysis.MayInfluence(reader, writer));
}

TEST(ProgramAnalysisTest, DisjointSpawnedThreadsAreIndependent) {
  ProgramBuilder b;
  b.Global("x", 0);
  b.Global("y", 0);
  b.Method("A").LoadConst(0, 1).StoreGlobal("x", 0).Return();
  b.Method("B").LoadConst(0, 2).StoreGlobal("y", 0).Return();
  b.Method("Main").Spawn(0, "A").Spawn(1, "B").Join(0).Join(1).Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  const SymbolId a = program->method_names().Find("A");
  const SymbolId method_b = program->method_names().Find("B");

  const ProgramAnalysis analysis = ProgramAnalysis::Analyze(*program);
  // Disjoint globals, no locks, joins resolved to distinct threads: the
  // workers cannot influence each other in either direction.
  EXPECT_FALSE(analysis.MayInfluence(a, method_b));
  EXPECT_FALSE(analysis.MayInfluence(method_b, a));
  // Both influence the main method (their exits release its joins).
  const SymbolId main_id = program->method_names().Find("Main");
  EXPECT_TRUE(analysis.MayInfluence(a, main_id));
  EXPECT_TRUE(analysis.MayInfluence(method_b, main_id));
}

TEST(ProgramAnalysisTest, SharedMutexLinksBothWays) {
  ProgramBuilder b;
  b.Mutex("m");
  b.Global("x", 0);
  b.Global("y", 0);
  b.Method("A").Lock("m").LoadConst(0, 1).StoreGlobal("x", 0).Unlock("m")
      .Return();
  b.Method("B").Lock("m").LoadConst(0, 2).StoreGlobal("y", 0).Unlock("m")
      .Return();
  b.Method("Main").Spawn(0, "A").Spawn(1, "B").Join(0).Join(1).Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  const SymbolId a = program->method_names().Find("A");
  const SymbolId method_b = program->method_names().Find("B");

  const ProgramAnalysis analysis = ProgramAnalysis::Analyze(*program);
  // Lock contention is a timing channel in both directions.
  EXPECT_TRUE(analysis.MayInfluence(a, method_b));
  EXPECT_TRUE(analysis.MayInfluence(method_b, a));
}

TEST(ProgramAnalysisTest, UnreferencedMethodIsUnreachable) {
  ProgramBuilder b;
  b.Method("Dead").LoadConst(0, 1).Return(0);
  b.Method("Main").LoadConst(0, 1).Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  const SymbolId dead = program->method_names().Find("Dead");
  const SymbolId main_id = program->method_names().Find("Main");

  const ProgramAnalysis analysis = ProgramAnalysis::Analyze(*program);
  EXPECT_FALSE(analysis.MethodReachable(dead));
  EXPECT_TRUE(analysis.MethodReachable(main_id));
  // Out-of-range ids are conservatively reachable.
  EXPECT_TRUE(analysis.MethodReachable(kInvalidSymbol));
  EXPECT_TRUE(analysis.MethodReachable(999));
}

TEST(ProgramAnalysisTest, LintErrorsDegradeInfluenceConservatively) {
  ProgramBuilder b;
  b.Global("x", 0);
  b.Global("y", 0);
  b.Method("A").LoadConst(0, 1).StoreGlobal("x", 0).Return();
  b.Method("B").LoadConst(0, 2).StoreGlobal("y", 0).Return();
  b.Method("Main").Random(2, 1).Spawn(0, "A").Spawn(1, "B").Join(0).Join(1)
      .Return();
  Program program = BuildOrDie(b, "Main");
  MutableMethod(program, "Main").code[0].imm = 0;  // bad-random-bound
  const SymbolId a = program.method_names().Find("A");
  const SymbolId method_b = program.method_names().Find("B");

  const ProgramAnalysis analysis = ProgramAnalysis::Analyze(program);
  ASSERT_GT(analysis.error_count(), 0u);
  // With errors present the analysis must not claim independence.
  EXPECT_TRUE(analysis.MayInfluence(a, method_b));
  EXPECT_TRUE(analysis.MayInfluence(method_b, a));
}

// ---------------------------------------------------------------------------
// Predicate feasibility.

TEST(ProgramAnalysisTest, InfeasiblePredicatesReferenceDeadMethods) {
  ProgramBuilder b;
  b.Method("Dead").LoadConst(0, 1).Return(0);
  b.Method("Live").LoadConst(0, 1).Return(0);
  b.Method("Main").CallVoid("Live").Return();
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());
  const SymbolId dead = program->method_names().Find("Dead");
  const SymbolId live = program->method_names().Find("Live");

  PredicateCatalog catalog;
  const PredicateId on_live =
      catalog.Intern(Predicate{.kind = PredKind::kMethodFails, .m1 = live});
  const PredicateId on_dead =
      catalog.Intern(Predicate{.kind = PredKind::kMethodFails, .m1 = dead});
  const PredicateId pair = catalog.Intern(
      Predicate{.kind = PredKind::kOrder, .m1 = live, .m2 = dead});
  const PredicateId compound = catalog.Intern(Predicate{
      .kind = PredKind::kCompound, .sub1 = on_live, .sub2 = on_dead});
  const PredicateId failure =
      catalog.Intern(Predicate{.kind = PredKind::kFailure});
  const PredicateId synthetic = catalog.Intern(
      Predicate{.kind = PredKind::kSynthetic, .occurrence = 3});

  const ProgramAnalysis analysis = ProgramAnalysis::Analyze(*program);
  const std::vector<PredicateId> infeasible =
      InfeasiblePredicates(analysis, catalog);

  auto is_infeasible = [&](PredicateId id) {
    return std::find(infeasible.begin(), infeasible.end(), id) !=
           infeasible.end();
  };
  EXPECT_FALSE(is_infeasible(on_live));
  EXPECT_TRUE(is_infeasible(on_dead));
  EXPECT_TRUE(is_infeasible(pair));      // one dead constituent suffices
  EXPECT_TRUE(is_infeasible(compound));  // recurses into sub-predicates
  EXPECT_FALSE(is_infeasible(failure));  // F is never excluded
  EXPECT_FALSE(is_infeasible(synthetic));
}

TEST(ProgramAnalysisTest, PredicateMethodsRecursesThroughCompounds) {
  PredicateCatalog catalog;
  const PredicateId p1 =
      catalog.Intern(Predicate{.kind = PredKind::kMethodFails, .m1 = 4});
  const PredicateId p2 = catalog.Intern(
      Predicate{.kind = PredKind::kOrder, .m1 = 4, .m2 = 7});
  const PredicateId compound = catalog.Intern(
      Predicate{.kind = PredKind::kCompound, .sub1 = p1, .sub2 = p2});

  const std::vector<SymbolId> methods = PredicateMethods(catalog, compound);
  ASSERT_EQ(methods.size(), 2u);  // 4 appears once despite two references
  EXPECT_TRUE(std::find(methods.begin(), methods.end(), 4) != methods.end());
  EXPECT_TRUE(std::find(methods.begin(), methods.end(), 7) != methods.end());

  EXPECT_TRUE(PredicateMethods(catalog, kInvalidPredicate).empty());
  EXPECT_TRUE(
      PredicateMethods(catalog,
                       catalog.Intern(Predicate{.kind = PredKind::kFailure}))
          .empty());
}

}  // namespace
}  // namespace aid
