// Tests of compound-predicate mining (paper Section 3.2): predicates that
// cause the failure only in conjunction are individually non-discriminative
// but their conjunction is, and AID can then treat the conjunction as the
// root-cause predicate.

#include "sd/conjunctions.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "predicates/extractor.h"
#include "runtime/vm.h"
#include "sd/statistical_debugger.h"
#include "synth/model.h"

namespace aid {
namespace {

TEST(ConjunctionsTest, FindsThePairBehindAConjunctiveFailure) {
  PredicateCatalog catalog;
  const PredicateId a = catalog.Intern(
      Predicate{.kind = PredKind::kSynthetic, .occurrence = 1});
  const PredicateId b = catalog.Intern(
      Predicate{.kind = PredKind::kSynthetic, .occurrence = 2});
  const PredicateId f = catalog.Intern(Predicate{.kind = PredKind::kFailure});

  // Failure iff both a and b: each alone appears in successful runs.
  auto log = [&](bool has_a, bool has_b) {
    PredicateLog l;
    l.failed = has_a && has_b;
    if (has_a) l.observed[a] = {1, 1};
    if (has_b) l.observed[b] = {2, 2};
    if (l.failed) l.observed[f] = {9, 9};
    return l;
  };
  std::vector<PredicateLog> logs{log(true, true),  log(true, false),
                                 log(false, true), log(false, false),
                                 log(true, true),  log(true, false)};

  const auto candidates = FindDiscriminativeConjunctions(catalog, logs);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].first, a);
  EXPECT_EQ(candidates[0].second, b);
}

TEST(ConjunctionsTest, SkipsPairsWithImperfectRecall) {
  PredicateCatalog catalog;
  const PredicateId a = catalog.Intern(
      Predicate{.kind = PredKind::kSynthetic, .occurrence = 1});
  const PredicateId b = catalog.Intern(
      Predicate{.kind = PredKind::kSynthetic, .occurrence = 2});

  // b misses one failed run: the conjunction could not explain it.
  PredicateLog f1;
  f1.failed = true;
  f1.observed[a] = {1, 1};
  f1.observed[b] = {2, 2};
  PredicateLog f2;
  f2.failed = true;
  f2.observed[a] = {1, 1};
  PredicateLog s1;
  s1.failed = false;
  s1.observed[a] = {1, 1};
  std::vector<PredicateLog> logs{f1, f2, s1};

  EXPECT_TRUE(FindDiscriminativeConjunctions(catalog, logs).empty());
}

TEST(ConjunctionsTest, ConjunctionOfOrderInversions) {
  ProgramBuilder b;
  b.Global("g1", 0);
  b.Global("g2", 0);
  for (int i = 1; i <= 2; ++i) {
    const std::string idx = std::to_string(i);
    auto p = b.Method("Publisher" + idx);
    p.Random(0, 2);
    const size_t slow = p.JumpIfNonZeroPlaceholder(0);
    p.Delay(5);
    const size_t pub = p.JumpPlaceholder();
    p.PatchTarget(slow);
    p.Delay(60);
    p.PatchTarget(pub);
    p.LoadConst(1, 1).StoreGlobal("g" + idx, 1).Return();

    auto f = b.Method("Fetch" + idx);
    f.SideEffectFree();
    f.LoadGlobal(0, "g" + idx).Return(0);

    auto c = b.Method("Consumer" + idx);
    c.Delay(30)
        .Call(0, "Fetch" + idx)
        .LoadConst(1, 1)
        .Sub(2, 1, 0)          // 1 when the fetch was stale
        .StoreGlobal("stale" + idx, 2)
        .Return();
  }
  b.Global("stale1", 0);
  b.Global("stale2", 0);
  {
    auto m = b.Method("Main");
    m.Spawn(0, "Publisher1")
        .Spawn(1, "Publisher2")
        .Spawn(2, "Consumer1")
        .Spawn(3, "Consumer2")
        .Join(0)
        .Join(1)
        .Join(2)
        .Join(3)
        .LoadGlobal(4, "stale1")
        .LoadGlobal(5, "stale2")
        .Mul(6, 4, 5)
        .ThrowIfNonZero(6, "DoubleStale")
        .Return();
  }
  auto program = b.Build("Main");
  ASSERT_TRUE(program.ok());

  std::vector<ExecutionTrace> traces;
  Vm vm(&*program);
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    VmOptions options;
    options.seed = seed;
    auto trace = vm.Run(options);
    ASSERT_TRUE(trace.ok());
    traces.push_back(std::move(*trace));
  }
  PredicateExtractor extractor;
  ASSERT_TRUE(extractor.Observe(traces).ok());

  const PredicateId order1 = extractor.catalog().Find(Predicate{
      .kind = PredKind::kOrder,
      .m1 = program->method_names().Find("Fetch1"),
      .m2 = program->method_names().Find("Publisher1")});
  const PredicateId order2 = extractor.catalog().Find(Predicate{
      .kind = PredKind::kOrder,
      .m1 = program->method_names().Find("Fetch2"),
      .m2 = program->method_names().Find("Publisher2")});
  ASSERT_NE(order1, kInvalidPredicate);
  ASSERT_NE(order2, kInvalidPredicate);

  // Neither inversion is fully discriminative alone...
  auto sd = StatisticalDebugger::Analyze(extractor.catalog(), extractor.logs());
  ASSERT_TRUE(sd.ok());
  EXPECT_FALSE(sd->stats(order1).fully_discriminative());
  EXPECT_FALSE(sd->stats(order2).fully_discriminative());
  EXPECT_DOUBLE_EQ(sd->stats(order1).recall(), 1.0);
  EXPECT_DOUBLE_EQ(sd->stats(order2).recall(), 1.0);

  // ...the miner proposes the pair (among other index-crossing pairs like
  // (race1, order2), which are equally valid conjunctions)...
  const auto candidates = FindDiscriminativeConjunctions(
      extractor.catalog(), extractor.logs(), /*max_results=*/128);
  bool found = false;
  for (const auto& candidate : candidates) {
    if ((candidate.first == order1 && candidate.second == order2) ||
        (candidate.first == order2 && candidate.second == order1)) {
      found = true;
    }
  }
  ASSERT_TRUE(found);

  // ...and the registered compound is fully discriminative.
  auto compound = extractor.AddCompound(order1, order2);
  ASSERT_TRUE(compound.ok());
  auto sd2 = StatisticalDebugger::Analyze(extractor.catalog(), extractor.logs());
  ASSERT_TRUE(sd2.ok());
  EXPECT_TRUE(sd2->stats(*compound).fully_discriminative());
}

}  // namespace
}  // namespace aid
