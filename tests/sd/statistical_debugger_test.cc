#include "sd/statistical_debugger.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aid {
namespace {

// Builds a log set over a catalog of `n` synthetic predicates.
class SdTest : public ::testing::Test {
 protected:
  PredicateId Pred(int index) {
    return catalog_.Intern(
        Predicate{.kind = PredKind::kSynthetic, .occurrence = index});
  }

  PredicateLog MakeLog(bool failed, std::vector<PredicateId> observed) {
    PredicateLog log;
    log.failed = failed;
    Tick t = 0;
    for (PredicateId id : observed) {
      log.observed[id] = {t, t};
      ++t;
    }
    return log;
  }

  PredicateCatalog catalog_;
};

TEST_F(SdTest, RequiresBothOutcomes) {
  const PredicateId a = Pred(1);
  std::vector<PredicateLog> logs{MakeLog(true, {a})};
  EXPECT_FALSE(StatisticalDebugger::Analyze(catalog_, logs).ok());
}

TEST_F(SdTest, PrecisionAndRecall) {
  const PredicateId a = Pred(1);
  // a true in 2 of 3 failed runs and 1 of 2 successful runs.
  std::vector<PredicateLog> logs{
      MakeLog(true, {a}), MakeLog(true, {a}), MakeLog(true, {}),
      MakeLog(false, {a}), MakeLog(false, {})};
  auto sd = StatisticalDebugger::Analyze(catalog_, logs);
  ASSERT_TRUE(sd.ok());
  const PredicateStats& stats = sd->stats(a);
  EXPECT_DOUBLE_EQ(stats.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.recall(), 2.0 / 3.0);
  EXPECT_FALSE(stats.fully_discriminative());
}

TEST_F(SdTest, FullyDiscriminativeRequiresPerfectPrecisionAndRecall) {
  const PredicateId perfect = Pred(1);
  const PredicateId low_recall = Pred(2);
  const PredicateId low_precision = Pred(3);
  const PredicateId invariant = Pred(4);
  std::vector<PredicateLog> logs{
      MakeLog(true, {perfect, low_recall, low_precision, invariant}),
      MakeLog(true, {perfect, low_precision, invariant}),
      MakeLog(false, {low_precision, invariant}),
      MakeLog(false, {invariant})};
  auto sd = StatisticalDebugger::Analyze(catalog_, logs);
  ASSERT_TRUE(sd.ok());
  const auto fd = sd->FullyDiscriminative();
  ASSERT_EQ(fd.size(), 1u);
  EXPECT_EQ(fd[0], perfect);
  // The program invariant (true everywhere) has precision = failure rate.
  EXPECT_DOUBLE_EQ(sd->stats(invariant).precision(), 0.5);
  EXPECT_DOUBLE_EQ(sd->stats(invariant).recall(), 1.0);
}

TEST_F(SdTest, RankedOrdersByF1) {
  const PredicateId strong = Pred(1);
  const PredicateId weak = Pred(2);
  std::vector<PredicateLog> logs{
      MakeLog(true, {strong, weak}), MakeLog(true, {strong}),
      MakeLog(false, {weak}), MakeLog(false, {})};
  auto sd = StatisticalDebugger::Analyze(catalog_, logs);
  ASSERT_TRUE(sd.ok());
  const auto ranked = sd->Ranked();
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].id, strong);
  EXPECT_GE(ranked[0].stats.f1(), ranked[1].stats.f1());
}

TEST_F(SdTest, RankedMinRecallFilters) {
  const PredicateId rare = Pred(1);
  std::vector<PredicateLog> logs{MakeLog(true, {rare}), MakeLog(true, {}),
                                 MakeLog(true, {}), MakeLog(false, {})};
  auto sd = StatisticalDebugger::Analyze(catalog_, logs);
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->Ranked(0.0).size(), 1u);
  EXPECT_TRUE(sd->Ranked(0.9).empty());
}

TEST_F(SdTest, UnobservedPredicateHasZeroStats) {
  const PredicateId never = Pred(1);
  std::vector<PredicateLog> logs{MakeLog(true, {}), MakeLog(false, {})};
  auto sd = StatisticalDebugger::Analyze(catalog_, logs);
  ASSERT_TRUE(sd.ok());
  EXPECT_DOUBLE_EQ(sd->stats(never).precision(), 0.0);
  EXPECT_DOUBLE_EQ(sd->stats(never).recall(), 0.0);
  EXPECT_DOUBLE_EQ(sd->stats(never).f1(), 0.0);
  EXPECT_FALSE(sd->stats(never).fully_discriminative());
}

// Property sweep: for random log sets, fully-discriminative implies
// precision == recall == 1 and vice versa.
class SdPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SdPropertyTest, FullyDiscriminativeIffPerfectScores) {
  const int seed = GetParam();
  PredicateCatalog catalog;
  std::vector<PredicateId> preds;
  for (int i = 0; i < 12; ++i) {
    preds.push_back(catalog.Intern(
        Predicate{.kind = PredKind::kSynthetic, .occurrence = i}));
  }
  Rng rng(static_cast<uint64_t>(seed));
  std::vector<PredicateLog> logs;
  for (int r = 0; r < 20; ++r) {
    PredicateLog log;
    log.failed = rng.Bernoulli(0.5);
    for (PredicateId id : preds) {
      if (rng.Bernoulli(0.4)) log.observed[id] = {0, 0};
    }
    logs.push_back(std::move(log));
  }
  int failed = 0;
  for (const auto& log : logs) failed += log.failed ? 1 : 0;
  if (failed == 0 || failed == static_cast<int>(logs.size())) {
    GTEST_SKIP() << "degenerate outcome split";
  }
  auto sd = StatisticalDebugger::Analyze(catalog, logs);
  ASSERT_TRUE(sd.ok());
  for (PredicateId id : preds) {
    const auto& stats = sd->stats(id);
    const bool perfect = stats.precision() == 1.0 && stats.recall() == 1.0;
    EXPECT_EQ(stats.fully_discriminative(), perfect);
    EXPECT_GE(stats.precision(), 0.0);
    EXPECT_LE(stats.precision(), 1.0);
    EXPECT_GE(stats.recall(), 0.0);
    EXPECT_LE(stats.recall(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SdPropertyTest, ::testing::Range(1, 21));

// --- statically excluded predicates (analysis/analyzer.h) -----------------

TEST_F(SdTest, ExcludedPredicatesAreZeroedOut) {
  const PredicateId live = Pred(1);
  const PredicateId dead = Pred(2);
  // Both predicates look fully discriminative in the logs; exclusion must
  // still erase the infeasible one from every statistic.
  std::vector<PredicateLog> logs{MakeLog(true, {live, dead}),
                                 MakeLog(true, {live, dead}),
                                 MakeLog(false, {})};
  auto sd = StatisticalDebugger::Analyze(catalog_, logs, {dead});
  ASSERT_TRUE(sd.ok());

  const PredicateStats& excluded = sd->stats(dead);
  EXPECT_EQ(excluded.true_in_failed, 0);
  EXPECT_EQ(excluded.true_in_successful, 0);
  EXPECT_DOUBLE_EQ(excluded.precision(), 0.0);
  EXPECT_DOUBLE_EQ(excluded.recall(), 0.0);
  EXPECT_FALSE(excluded.fully_discriminative());

  // The surviving predicate is untouched by its neighbor's exclusion.
  const PredicateStats& kept = sd->stats(live);
  EXPECT_TRUE(kept.fully_discriminative());
  EXPECT_DOUBLE_EQ(kept.precision(), 1.0);
  EXPECT_DOUBLE_EQ(kept.recall(), 1.0);
}

TEST_F(SdTest, ExcludedPredicatesNeverRank) {
  const PredicateId live = Pred(1);
  const PredicateId dead = Pred(2);
  std::vector<PredicateLog> logs{MakeLog(true, {live, dead}),
                                 MakeLog(false, {})};
  auto sd = StatisticalDebugger::Analyze(catalog_, logs, {dead});
  ASSERT_TRUE(sd.ok());
  for (const RankedPredicate& ranked : sd->Ranked()) {
    EXPECT_NE(ranked.id, dead);
  }
}

TEST_F(SdTest, OutOfRangeExclusionsAreIgnored) {
  const PredicateId live = Pred(1);
  std::vector<PredicateLog> logs{MakeLog(true, {live}), MakeLog(false, {})};
  auto sd = StatisticalDebugger::Analyze(catalog_, logs,
                                         {kInvalidPredicate, 9999});
  ASSERT_TRUE(sd.ok());
  EXPECT_TRUE(sd->stats(live).fully_discriminative());
}

}  // namespace
}  // namespace aid
