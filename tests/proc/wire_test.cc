// Tests of the process-isolation wire protocol: frame transport over real
// pipes (framing, EOF, deadlines, corrupt lengths), message codecs, and the
// subject-spec codec that ships whole subjects across the process boundary.

#include "proc/wire.h"

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "proc/subject_spec.h"
#include "runtime/program.h"
#include "runtime/program_io.h"
#include "synth/generator.h"

#if AID_PROC_SUPPORTED
#include <fcntl.h>
#include <unistd.h>
#endif

namespace aid {
namespace {

#if AID_PROC_SUPPORTED

class PipePair {
 public:
  PipePair() { EXPECT_EQ(::pipe(fds_), 0); }
  ~PipePair() {
    CloseRead();
    CloseWrite();
  }
  int read_fd() const { return fds_[0]; }
  int write_fd() const { return fds_[1]; }
  void CloseRead() {
    if (fds_[0] >= 0) ::close(fds_[0]);
    fds_[0] = -1;
  }
  void CloseWrite() {
    if (fds_[1] >= 0) ::close(fds_[1]);
    fds_[1] = -1;
  }

 private:
  int fds_[2] = {-1, -1};
};

TEST(ProcWireTest, FramesRoundTripOverAPipe) {
  PipePair pipe;
  RunTrialMsg request;
  request.trial_index = 42;
  request.intervened = {3, 1, 4, 1, 5};
  ASSERT_TRUE(WriteFrame(pipe.write_fd(), ProcMsgType::kRunTrial,
                         EncodeRunTrial(request))
                  .ok());
  ASSERT_TRUE(WriteFrame(pipe.write_fd(), ProcMsgType::kShutdown, {}).ok());

  auto frame = ReadFrame(pipe.read_fd());
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, ProcMsgType::kRunTrial);
  auto decoded = DecodeRunTrial(frame->payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->trial_index, 42u);
  EXPECT_EQ(decoded->intervened, request.intervened);

  auto shutdown = ReadFrame(pipe.read_fd());
  ASSERT_TRUE(shutdown.ok());
  EXPECT_EQ(shutdown->type, ProcMsgType::kShutdown);
  EXPECT_TRUE(shutdown->payload.empty());
}

TEST(ProcWireTest, EofSurfacesAsAborted) {
  PipePair pipe;
  pipe.CloseWrite();
  auto frame = ReadFrame(pipe.read_fd());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kAborted);
}

TEST(ProcWireTest, TruncatedFrameSurfacesAsAborted) {
  PipePair pipe;
  // A length prefix promising 100 bytes, then EOF after 3.
  WireWriter writer;
  writer.U32(100);
  writer.U8(static_cast<uint8_t>(ProcMsgType::kVerdict));
  writer.Raw("ab");
  ASSERT_EQ(::write(pipe.write_fd(), writer.buffer().data(),
                    writer.buffer().size()),
            static_cast<ssize_t>(writer.buffer().size()));
  pipe.CloseWrite();
  auto frame = ReadFrame(pipe.read_fd());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kAborted);
}

TEST(ProcWireTest, CorruptLengthIsInvalidArgument) {
  PipePair pipe;
  WireWriter writer;
  writer.U32(0);  // a frame must carry at least its type byte
  ASSERT_EQ(::write(pipe.write_fd(), writer.buffer().data(),
                    writer.buffer().size()),
            static_cast<ssize_t>(writer.buffer().size()));
  auto frame = ReadFrame(pipe.read_fd());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProcWireTest, DeadlineExpiresOnASilentPeer) {
  PipePair pipe;
  const auto start = std::chrono::steady_clock::now();
  auto frame = ReadFrameDeadline(pipe.read_fd(), 50);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            45);
}

TEST(ProcWireTest, WriteDeadlineExpiresWhenThePeerStopsDraining) {
  PipePair pipe;
  // Nobody reads: a payload far beyond any pipe buffer must hit the
  // deadline instead of wedging the writer forever.
  const std::string big(4 << 20, 'x');
  const Status status =
      WriteFrameDeadline(pipe.write_fd(), ProcMsgType::kSpec, big, 100);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  // The fd is back in blocking mode afterwards.
  const int flags = ::fcntl(pipe.write_fd(), F_GETFL);
  EXPECT_EQ(flags & O_NONBLOCK, 0);
}

TEST(ProcWireTest, DeadlineReadStillDeliversPromptFrames) {
  PipePair pipe;
  std::thread writer([&pipe]() {
    VerdictMsg verdict;
    verdict.failed = true;
    EXPECT_TRUE(WriteFrame(pipe.write_fd(), ProcMsgType::kVerdict,
                           EncodeVerdict(verdict))
                    .ok());
  });
  auto frame = ReadFrameDeadline(pipe.read_fd(), 5000);
  writer.join();
  ASSERT_TRUE(frame.ok()) << frame.status();
  auto verdict = DecodeVerdict(frame->payload);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->failed);
}

#else  // !AID_PROC_SUPPORTED

TEST(ProcWireTest, UnsupportedPlatformReportsUnimplemented) {
  EXPECT_EQ(ReadFrame(0).status().code(), StatusCode::kUnimplemented);
}

#endif  // AID_PROC_SUPPORTED

// --- message codecs (platform-independent) --------------------------------

TEST(ProcWireTest, HelloRejectsWrongMagic) {
  HelloMsg hello;
  hello.magic = 0x12345678;
  auto decoded = DecodeHello(EncodeHello(hello));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProcWireTest, ErrorMessageRoundTripsStatus) {
  const Status original = Status::NotFound("no such subject");
  auto decoded = DecodeError(EncodeError(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->ToStatus(), original);
}

TEST(ProcWireTest, TruncatedMessagePayloadsFailCleanly) {
  const std::string hello = EncodeHello(HelloMsg{});
  for (size_t cut = 0; cut < hello.size(); ++cut) {
    EXPECT_FALSE(DecodeHello(hello.substr(0, cut)).ok());
  }
  RunTrialMsg request;
  request.intervened = {1, 2, 3};
  const std::string run = EncodeRunTrial(request);
  for (size_t cut = 0; cut < run.size(); ++cut) {
    EXPECT_FALSE(DecodeRunTrial(run.substr(0, cut)).ok());
  }
}

// --- subject specs --------------------------------------------------------

TEST(SubjectSpecTest, ModelSpecRoundTripsIdentically) {
  SyntheticAppOptions options;
  options.max_threads = 10;
  options.seed = 11;
  auto model = GenerateSyntheticApp(options);
  ASSERT_TRUE(model.ok());

  SubjectSpec spec;
  spec.kind = SubjectKind::kFlakyModel;
  spec.model = model->get();
  spec.manifest_probability = 0.625;
  spec.flaky_seed = 99;
  spec.crash_period = 17;
  auto encoded = EncodeSubjectSpec(spec);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  auto decoded = DecodeSubjectSpec(*encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  EXPECT_EQ(decoded->kind, SubjectKind::kFlakyModel);
  EXPECT_EQ(decoded->manifest_probability, 0.625);
  EXPECT_EQ(decoded->flaky_seed, 99u);
  EXPECT_EQ(decoded->crash_period, 17u);
  ASSERT_NE(decoded->model, nullptr);

  const GroundTruthModel& original = **model;
  const GroundTruthModel& copy = *decoded->model;
  // Identical id space and structure...
  EXPECT_EQ(copy.catalog().size(), original.catalog().size());
  EXPECT_EQ(copy.failure(), original.failure());
  EXPECT_EQ(copy.predicates(), original.predicates());
  EXPECT_EQ(copy.causal_chain(), original.causal_chain());
  EXPECT_EQ(copy.temporal_edges(), original.temporal_edges());
  // ...and identical behavior: execution under interventions matches.
  const std::vector<std::vector<PredicateId>> interventions = {
      {}, {original.root_cause()}, {original.predicates().front()}};
  for (const auto& intervened : interventions) {
    const PredicateLog a = original.Execute(intervened);
    const PredicateLog b = copy.Execute(intervened);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.observed.size(), b.observed.size());
    for (const auto& [id, obs] : a.observed) {
      ASSERT_TRUE(b.Has(id));
      EXPECT_EQ(b.observed.at(id).start, obs.start);
      EXPECT_EQ(b.observed.at(id).end, obs.end);
    }
  }
}

TEST(SubjectSpecTest, CaseSpecRoundTrips) {
  SubjectSpec spec;
  spec.kind = SubjectKind::kCase;
  spec.case_key = "kafka";
  spec.hang_period = 5;
  auto encoded = EncodeSubjectSpec(spec);
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeSubjectSpec(*encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->kind, SubjectKind::kCase);
  EXPECT_EQ(decoded->case_key, "kafka");
  EXPECT_EQ(decoded->hang_period, 5u);
}

TEST(SubjectSpecTest, SelfInconsistentSpecsAreRejected) {
  SubjectSpec no_model;
  no_model.kind = SubjectKind::kModel;
  EXPECT_FALSE(EncodeSubjectSpec(no_model).ok());

  SubjectSpec no_key;
  no_key.kind = SubjectKind::kCase;
  EXPECT_FALSE(EncodeSubjectSpec(no_key).ok());

  SubjectSpec no_program;
  no_program.kind = SubjectKind::kVmProgram;
  EXPECT_FALSE(EncodeSubjectSpec(no_program).ok());
}

TEST(SubjectSpecTest, TruncatedSpecFailsCleanly) {
  SubjectSpec spec;
  spec.kind = SubjectKind::kCase;
  spec.case_key = "npgsql";
  auto encoded = EncodeSubjectSpec(spec);
  ASSERT_TRUE(encoded.ok());
  for (size_t cut = 0; cut < encoded->size(); ++cut) {
    EXPECT_FALSE(DecodeSubjectSpec(encoded->substr(0, cut)).ok());
  }
}

// --- program serialization ------------------------------------------------

TEST(ProgramIoTest, ProgramRoundTripsAndRunsIdentically) {
  ProgramBuilder builder;
  builder.Global("counter", 3);
  builder.Array("slots", 4);
  builder.Mutex("lock");
  auto worker = builder.Method("Worker");
  worker.Lock("lock")
      .LoadGlobal(0, "counter")
      .AddImm(0, 0, 1)
      .StoreGlobal("counter", 0)
      .Unlock("lock")
      .Return(0);
  auto main_method = builder.Method("Main");
  main_method.Spawn(1, "Worker")
      .Call(0, "Worker")
      .Join(1)
      .LoadGlobal(0, "counter")
      .ThrowIfZero(0, "Boom")
      .Return(0);
  auto program = builder.Build("Main");
  ASSERT_TRUE(program.ok()) << program.status();

  const std::string bytes = ProgramToBytes(*program);
  auto decoded = ProgramFromBytes(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  EXPECT_EQ(decoded->entry(), program->entry());
  EXPECT_EQ(decoded->methods().size(), program->methods().size());
  EXPECT_EQ(decoded->method_names().size(), program->method_names().size());
  EXPECT_EQ(decoded->object_names().size(), program->object_names().size());
  EXPECT_EQ(decoded->mutexes(), program->mutexes());
  EXPECT_EQ(decoded->globals(), program->globals());
  EXPECT_EQ(decoded->arrays(), program->arrays());
  // Bit-stable re-encode.
  EXPECT_EQ(ProgramToBytes(*decoded), bytes);
}

TEST(ProgramIoTest, TruncatedProgramFailsCleanly) {
  ProgramBuilder builder;
  builder.Global("x", 0);
  auto main_method = builder.Method("Main");
  main_method.LoadGlobal(0, "x").Return(0);
  auto program = builder.Build("Main");
  ASSERT_TRUE(program.ok());
  const std::string bytes = ProgramToBytes(*program);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(ProgramFromBytes(std::string_view(bytes).substr(0, cut)).ok());
  }
}

}  // namespace
}  // namespace aid
