// Tests of proc::SubprocessTarget end to end against the real
// aid_subject_host binary: parity with in-process dispatch, crash respawn,
// deadline kills, replica pooling under exec::ParallelTarget, and the
// failure-path diagnostics (bad host path, catalog mismatch, crash loops).
//
// Skips gracefully on platforms without fork/exec.

#include "proc/subprocess_target.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "exec/parallel_target.h"
#include "proc/wire.h"
#include "synth/flaky_target.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace aid {
namespace {

#define SKIP_WITHOUT_FORK()                                            \
  do {                                                                 \
    if (!SubprocessIsolationSupported()) {                             \
      GTEST_SKIP() << "no fork/exec on this platform";                 \
    }                                                                  \
  } while (false)

std::unique_ptr<GroundTruthModel> MakeModel(uint64_t seed = 7,
                                            int max_threads = 10) {
  SyntheticAppOptions options;
  options.max_threads = max_threads;
  options.seed = seed;
  auto model = GenerateSyntheticApp(options);
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(*model);
}

SubjectSpec ModelSpec(const GroundTruthModel* model) {
  SubjectSpec spec;
  spec.kind = SubjectKind::kModel;
  spec.model = model;
  return spec;
}

void ExpectLogsEqual(const PredicateLog& a, const PredicateLog& b) {
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.outcome, b.outcome);
  ASSERT_EQ(a.observed.size(), b.observed.size());
  for (const auto& [id, obs] : a.observed) {
    ASSERT_TRUE(b.Has(id)) << "predicate " << id << " missing";
    EXPECT_EQ(b.observed.at(id).start, obs.start);
    EXPECT_EQ(b.observed.at(id).end, obs.end);
  }
}

TEST(SubprocessTargetTest, MatchesInProcessModelDispatch) {
  SKIP_WITHOUT_FORK();
  auto model = MakeModel();
  auto target = SubprocessTarget::Create(ModelSpec(model.get()));
  ASSERT_TRUE(target.ok()) << target.status();

  ModelTarget reference(model.get());
  const std::vector<std::vector<PredicateId>> spans = {
      {}, {model->root_cause()}, {model->predicates().front()},
      {model->predicates().front(), model->root_cause()}};
  for (const auto& span : spans) {
    auto isolated = (*target)->RunIntervened(span, 2);
    auto in_process = reference.RunIntervened(span, 2);
    ASSERT_TRUE(isolated.ok()) << isolated.status();
    ASSERT_TRUE(in_process.ok());
    ASSERT_EQ(isolated->logs.size(), in_process->logs.size());
    for (size_t i = 0; i < isolated->logs.size(); ++i) {
      ExpectLogsEqual(isolated->logs[i], in_process->logs[i]);
    }
  }
  EXPECT_EQ((*target)->executions(), reference.executions());
  EXPECT_EQ((*target)->health().respawns, 0);
  EXPECT_EQ((*target)->child_catalog_size(), model->catalog().size());
}

TEST(SubprocessTargetTest, FlakyModelMatchesPositionally) {
  SKIP_WITHOUT_FORK();
  auto model = MakeModel(11);
  SubjectSpec spec;
  spec.kind = SubjectKind::kFlakyModel;
  spec.model = model.get();
  spec.manifest_probability = 0.5;
  spec.flaky_seed = 3;
  auto target = SubprocessTarget::Create(spec);
  ASSERT_TRUE(target.ok()) << target.status();

  FlakyModelTarget reference(model.get(), 0.5, 3);
  // Seek both somewhere nontrivial; positional nondeterminism must agree.
  (*target)->SeekTrial(5);
  reference.SeekTrial(5);
  auto isolated = (*target)->RunIntervened({}, 8);
  auto in_process = reference.RunIntervened({}, 8);
  ASSERT_TRUE(isolated.ok()) << isolated.status();
  ASSERT_TRUE(in_process.ok());
  ASSERT_EQ(isolated->logs.size(), in_process->logs.size());
  for (size_t i = 0; i < isolated->logs.size(); ++i) {
    ExpectLogsEqual(isolated->logs[i], in_process->logs[i]);
  }
}

TEST(SubprocessTargetTest, CrashIsRecordedAsFailingTrialAndRespawns) {
  SKIP_WITHOUT_FORK();
  auto model = MakeModel();
  SubprocessOptions options;
  options.inject_crash_period = 3;  // trials 2, 5, 8, ... (0-based) crash
  auto target = SubprocessTarget::Create(ModelSpec(model.get()), options);
  ASSERT_TRUE(target.ok()) << target.status();

  auto result = (*target)->RunIntervened({}, 9);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->logs.size(), 9u);
  int crashed = 0;
  for (size_t i = 0; i < result->logs.size(); ++i) {
    const PredicateLog& log = result->logs[i];
    if ((i + 1) % 3 == 0) {
      EXPECT_TRUE(log.failed) << "crashed trial " << i << " must fail";
      EXPECT_EQ(log.outcome, TrialOutcome::kCrashed);
      EXPECT_FALSE(log.complete());
      ++crashed;
    } else {
      EXPECT_EQ(log.outcome, TrialOutcome::kCompleted);
      EXPECT_TRUE(log.complete());
    }
  }
  EXPECT_EQ(crashed, 3);
  EXPECT_EQ((*target)->health().crashed_trials, 3);
  EXPECT_EQ((*target)->health().respawns, 3);
  EXPECT_EQ((*target)->health().timed_out_trials, 0);
  EXPECT_EQ((*target)->executions(), 9);
}

TEST(SubprocessTargetTest, HangIsKilledAtDeadlineAndRespawns) {
  SKIP_WITHOUT_FORK();
  auto model = MakeModel();
  SubprocessOptions options;
  options.inject_hang_period = 4;  // trial 3 (0-based) hangs
  options.trial_deadline_ms = 300;
  auto target = SubprocessTarget::Create(ModelSpec(model.get()), options);
  ASSERT_TRUE(target.ok()) << target.status();

  auto result = (*target)->RunIntervened({}, 5);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->logs.size(), 5u);
  EXPECT_EQ(result->logs[3].outcome, TrialOutcome::kTimedOut);
  EXPECT_TRUE(result->logs[3].failed);
  for (size_t i : {0u, 1u, 2u, 4u}) {
    EXPECT_EQ(result->logs[i].outcome, TrialOutcome::kCompleted);
  }
  EXPECT_EQ((*target)->health().timed_out_trials, 1);
  EXPECT_EQ((*target)->health().respawns, 1);
  EXPECT_EQ((*target)->health().crashed_trials, 0);
}

TEST(SubprocessTargetTest, CrashLoopAbortsAtMaxRespawns) {
  SKIP_WITHOUT_FORK();
  auto model = MakeModel();
  SubprocessOptions options;
  options.inject_crash_period = 1;  // every trial crashes
  options.max_respawns = 3;
  auto target = SubprocessTarget::Create(ModelSpec(model.get()), options);
  ASSERT_TRUE(target.ok()) << target.status();

  auto result = (*target)->RunIntervened({}, 50);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_EQ((*target)->health().respawns, 3);
}

TEST(SubprocessTargetTest, PoolsUnderParallelTarget) {
  SKIP_WITHOUT_FORK();
  auto model = MakeModel();
  auto primary = SubprocessTarget::Create(ModelSpec(model.get()));
  ASSERT_TRUE(primary.ok()) << primary.status();
  auto pool = ParallelTarget::Create(primary->get(), 3);
  ASSERT_TRUE(pool.ok()) << pool.status();

  ModelTarget reference(model.get());
  InterventionSpans spans;
  for (PredicateId id : model->predicates()) spans.push_back({id});
  auto pooled = (*pool)->RunInterventionsBatch(spans, 2);
  auto serial = reference.RunInterventionsBatch(spans, 2);
  ASSERT_TRUE(pooled.ok()) << pooled.status();
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(pooled->size(), serial->size());
  for (size_t k = 0; k < pooled->size(); ++k) {
    ASSERT_EQ((*pooled)[k].logs.size(), (*serial)[k].logs.size());
    for (size_t i = 0; i < (*pooled)[k].logs.size(); ++i) {
      ExpectLogsEqual((*pooled)[k].logs[i], (*serial)[k].logs[i]);
    }
  }
  EXPECT_EQ((*pool)->executions(), reference.executions());
  EXPECT_EQ((*pool)->health().respawns, 0);
}

TEST(SubprocessTargetTest, MissingHostBinaryFailsWithClearError) {
  SKIP_WITHOUT_FORK();
  auto model = MakeModel();
  SubprocessOptions options;
  options.host_path = "/nonexistent/aid_subject_host";
  options.spawn_timeout_ms = 5000;
  auto target = SubprocessTarget::Create(ModelSpec(model.get()), options);
  ASSERT_TRUE(target.ok()) << target.status();
  auto result = (*target)->RunIntervened({}, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("subject host"),
            std::string::npos);
}

TEST(SubprocessTargetTest, CatalogMismatchIsCaughtAtHandshake) {
  SKIP_WITHOUT_FORK();
  auto model = MakeModel();
  SubprocessOptions options;
  options.expected_catalog_size =
      static_cast<uint32_t>(model->catalog().size()) + 5;  // deliberately wrong
  auto target = SubprocessTarget::Create(ModelSpec(model.get()), options);
  ASSERT_TRUE(target.ok()) << target.status();
  auto result = (*target)->RunIntervened({}, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("catalog"), std::string::npos);
}

TEST(SubprocessTargetTest, InvalidOptionsAreRejectedAtCreate) {
  auto model = MakeModel();
  SubprocessOptions negative_deadline;
  negative_deadline.trial_deadline_ms = -1;
  EXPECT_FALSE(
      SubprocessTarget::Create(ModelSpec(model.get()), negative_deadline)
          .ok());
  SubprocessOptions negative_respawns;
  negative_respawns.max_respawns = -1;
  EXPECT_FALSE(
      SubprocessTarget::Create(ModelSpec(model.get()), negative_respawns)
          .ok());
}

TEST(SubprocessTargetTest, CloneContinuesAtTheCursor) {
  SKIP_WITHOUT_FORK();
  auto model = MakeModel();
  auto target = SubprocessTarget::Create(ModelSpec(model.get()));
  ASSERT_TRUE(target.ok()) << target.status();
  ASSERT_TRUE((*target)->RunIntervened({}, 4).ok());
  EXPECT_EQ((*target)->trial_position(), 4u);
  auto clone = (*target)->Clone();
  ASSERT_TRUE(clone.ok());
  EXPECT_EQ((*clone)->trial_position(), 4u);
  EXPECT_EQ((*clone)->executions(), 0);
}

}  // namespace
}  // namespace aid
