// Hostile-input regression tests for the SubjectSpec codec: a runner daemon
// decodes SPEC frames from the network, so corrupted or malicious payloads
// must produce a structured Status error, never a crash or an
// out-of-catalog predicate id reaching GroundTruthModel::Execute.

#include "proc/subject_spec.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "runtime/program.h"
#include "synth/model.h"
#include "trace/serialize.h"

namespace aid {
namespace {

std::unique_ptr<GroundTruthModel> MakeModel() {
  auto model = std::make_unique<GroundTruthModel>();
  const PredicateId a = model->AddPredicate(0);
  const PredicateId b = model->AddPredicate(1);
  const PredicateId c = model->AddPredicate(2);
  const PredicateId f = model->AddFailure();
  model->SetCausalChain({a, b});
  model->SetTrueParents(c, {a});
  model->AddTemporalEdge(a, c);
  model->AddTemporalEdge(c, f);
  model->AddDependenceEdge(a, c);
  model->AddDependenceEdge(b, f);
  return model;
}

Program MakeProgram() {
  ProgramBuilder b;
  b.Global("g", 1);
  b.Method("Main").LoadGlobal(0, "g").Return(0);
  auto program = b.Build("Main");
  AID_CHECK(program.ok());
  return std::move(*program);
}

std::string EncodeModelSpec() {
  SubjectSpec spec;
  spec.kind = SubjectKind::kModel;
  auto model = MakeModel();
  spec.model = model.get();
  auto encoded = EncodeSubjectSpec(spec);
  AID_CHECK(encoded.ok());
  return std::move(*encoded);
}

// --- round trips ----------------------------------------------------------

TEST(SubjectSpecTest, ModelRoundTripKeepsDependenceEdges) {
  auto model = MakeModel();
  SubjectSpec spec;
  spec.kind = SubjectKind::kModel;
  spec.model = model.get();
  auto encoded = EncodeSubjectSpec(spec);
  ASSERT_TRUE(encoded.ok()) << encoded.status();

  auto decoded = DecodeSubjectSpec(*encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_NE(decoded->model, nullptr);
  EXPECT_EQ(decoded->model->dependence_edges(), model->dependence_edges());
  EXPECT_EQ(decoded->model->temporal_edges(), model->temporal_edges());
  EXPECT_EQ(decoded->model->causal_chain(), model->causal_chain());
  EXPECT_EQ(decoded->model->failure(), model->failure());
}

TEST(SubjectSpecTest, VmProgramRoundTripKeepsAnalysisOptions) {
  const Program program = MakeProgram();
  SubjectSpec spec;
  spec.kind = SubjectKind::kVmProgram;
  spec.program = &program;
  spec.vm.analysis.enabled = true;
  spec.vm.analysis.prune_edges = false;
  spec.vm.analysis.lint_programs = true;
  spec.vm.analysis.exclude_infeasible = false;
  auto encoded = EncodeSubjectSpec(spec);
  ASSERT_TRUE(encoded.ok()) << encoded.status();

  auto decoded = DecodeSubjectSpec(*encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->vm.analysis.enabled);
  EXPECT_FALSE(decoded->vm.analysis.prune_edges);
  EXPECT_TRUE(decoded->vm.analysis.lint_programs);
  EXPECT_FALSE(decoded->vm.analysis.exclude_infeasible);
  ASSERT_NE(decoded->program, nullptr);
  EXPECT_EQ(decoded->program->methods().size(), program.methods().size());
}

// --- structural corruption ------------------------------------------------

TEST(SubjectSpecCorruptTest, EveryModelSpecTruncationIsRejected) {
  const std::string bytes = EncodeModelSpec();
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = DecodeSubjectSpec(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(SubjectSpecCorruptTest, EveryVmSpecTruncationIsRejected) {
  const Program program = MakeProgram();
  SubjectSpec spec;
  spec.kind = SubjectKind::kVmProgram;
  spec.program = &program;
  auto encoded = EncodeSubjectSpec(spec);
  ASSERT_TRUE(encoded.ok());
  for (size_t len = 0; len < encoded->size(); ++len) {
    auto decoded =
        DecodeSubjectSpec(std::string_view(*encoded).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(SubjectSpecCorruptTest, TrailingGarbageIsRejected) {
  std::string bytes = EncodeModelSpec();
  bytes += '\x01';
  EXPECT_FALSE(DecodeSubjectSpec(bytes).ok());
}

TEST(SubjectSpecCorruptTest, WrongVersionIsRejected) {
  std::string bytes = EncodeModelSpec();
  bytes[0] = 1;  // pre-dependence-edge format
  const auto decoded = DecodeSubjectSpec(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
}

TEST(SubjectSpecCorruptTest, UnknownSubjectKindIsRejected) {
  WireWriter w;
  w.U32(2);   // format version
  w.U8(9);    // no such SubjectKind
  w.U64(0);   // crash_period
  w.U64(0);   // hang_period
  const auto decoded = DecodeSubjectSpec(w.Release());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("kind"), std::string::npos);
}

// --- hostile model payloads -----------------------------------------------

// Writes the spec envelope for a kModel subject; the caller appends the
// model payload (mirroring SerializeModel's layout) with hostile ids.
void WriteModelSpecHeader(WireWriter& w) {
  w.U32(2);    // format version
  w.U8(0);     // SubjectKind::kModel
  w.U64(0);    // crash_period
  w.U64(0);    // hang_period
  w.F64(1.0);  // manifest_probability
  w.U64(1);    // flaky_seed
}

// Minimal healthy prefix: failure id 0 plus one real predicate (id 1).
void WriteTwoPredicateCatalog(WireWriter& w) {
  w.I32(0);  // failure id
  w.U32(1);  // one non-failure predicate
  w.I32(1);  // id
  w.I32(0);  // display index
}

void ExpectRejected(WireWriter& w, std::string_view message_fragment) {
  const auto decoded = DecodeSubjectSpec(w.Release());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find(message_fragment),
            std::string::npos)
      << decoded.status();
}

TEST(SubjectSpecCorruptTest, ChainIdOutsideCatalogIsRejected) {
  WireWriter w;
  WriteModelSpecHeader(w);
  WriteTwoPredicateCatalog(w);
  w.U32(1);   // chain of one...
  w.I32(7);   // ...naming a predicate that does not exist
  w.U32(0);   // rules
  w.U32(0);   // temporal edges
  w.U32(0);   // dependence edges
  ExpectRejected(w, "causal chain");
}

TEST(SubjectSpecCorruptTest, RuleIdOutsideCatalogIsRejected) {
  WireWriter w;
  WriteModelSpecHeader(w);
  WriteTwoPredicateCatalog(w);
  w.U32(0);   // chain
  w.U32(1);   // one rule
  w.I32(9);   // hostile rule id
  w.U32(1);   // one parent
  w.I32(0);
  w.U32(0);   // temporal edges
  w.U32(0);   // dependence edges
  ExpectRejected(w, "true-cause rule");
}

TEST(SubjectSpecCorruptTest, RuleParentOutsideCatalogIsRejected) {
  WireWriter w;
  WriteModelSpecHeader(w);
  WriteTwoPredicateCatalog(w);
  w.U32(0);   // chain
  w.U32(1);   // one rule
  w.I32(1);   // valid rule id
  w.U32(1);   // one parent
  w.I32(-4);  // hostile parent id
  w.U32(0);   // temporal edges
  w.U32(0);   // dependence edges
  ExpectRejected(w, "true-cause parent");
}

TEST(SubjectSpecCorruptTest, TemporalEdgeOutsideCatalogIsRejected) {
  WireWriter w;
  WriteModelSpecHeader(w);
  WriteTwoPredicateCatalog(w);
  w.U32(0);   // chain
  w.U32(0);   // rules
  w.U32(1);   // one temporal edge
  w.I32(0);
  w.I32(9);   // hostile endpoint
  w.U32(0);   // dependence edges
  ExpectRejected(w, "temporal edge");
}

TEST(SubjectSpecCorruptTest, DependenceEdgeOutsideCatalogIsRejected) {
  WireWriter w;
  WriteModelSpecHeader(w);
  WriteTwoPredicateCatalog(w);
  w.U32(0);   // chain
  w.U32(0);   // rules
  w.U32(0);   // temporal edges
  w.U32(1);   // one dependence edge
  w.I32(9);   // hostile endpoint
  w.I32(0);
  ExpectRejected(w, "dependence edge");
}

TEST(SubjectSpecCorruptTest, NonDensePredicateIdsAreRejected) {
  WireWriter w;
  WriteModelSpecHeader(w);
  w.I32(-1);  // no failure
  w.U32(1);   // one predicate...
  w.I32(5);   // ...with a gappy id
  w.I32(0);
  w.U32(0);   // chain
  w.U32(0);   // rules
  w.U32(0);   // temporal edges
  w.U32(0);   // dependence edges
  ExpectRejected(w, "dense");
}

TEST(SubjectSpecCorruptTest, MalformedEmbeddedProgramIsRejected) {
  // A vm-program spec whose embedded program fails ValidateProgram (jump
  // out of range) must be rejected by the decode path -- this is the exact
  // frame a hostile client would send a runner daemon.
  Program program = MakeProgram();
  const SymbolId main_id = program.method_names().Find("Main");
  const_cast<std::vector<MethodDef>&>(
      program.methods())[static_cast<size_t>(main_id)]
      .code[0] = Instr{.op = Op::kJump, .imm = 1000};
  SubjectSpec spec;
  spec.kind = SubjectKind::kVmProgram;
  spec.program = &program;
  auto encoded = EncodeSubjectSpec(spec);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  const auto decoded = DecodeSubjectSpec(*encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("jump target"),
            std::string::npos);
}

}  // namespace
}  // namespace aid
